// Tests for SampleView: HT probabilities, subgraph products, and a
// retrospective 4-clique query (the generic-motif use case of Theorem 2).

#include "core/sample_view.h"

#include <vector>

#include <gtest/gtest.h>

#include "core/gps.h"
#include "gen/generators.h"
#include "graph/csr_graph.h"
#include "graph/stream.h"
#include "util/welford.h"

namespace gps {
namespace {

TEST(SampleViewTest, ProbabilitiesBeforeEviction) {
  GpsSamplerOptions options;
  options.capacity = 10;
  options.seed = 1;
  GpsSampler sampler(options);
  sampler.Process(MakeEdge(0, 1));
  sampler.Process(MakeEdge(1, 2));
  SampleView view = sampler.View();
  EXPECT_EQ(view.NumSampledEdges(), 2u);
  EXPECT_EQ(view.Threshold(), 0.0);
  EXPECT_DOUBLE_EQ(view.EdgeProbability(MakeEdge(0, 1)), 1.0);
  EXPECT_DOUBLE_EQ(view.EdgeEstimator(MakeEdge(0, 1)), 1.0);
  EXPECT_DOUBLE_EQ(view.EdgeProbability(MakeEdge(5, 6)), 0.0);
  EXPECT_DOUBLE_EQ(view.EdgeEstimator(MakeEdge(5, 6)), 0.0);
}

TEST(SampleViewTest, SubgraphEstimatorProducts) {
  GpsSamplerOptions options;
  options.capacity = 10;
  options.seed = 2;
  GpsSampler sampler(options);
  sampler.Process(MakeEdge(0, 1));
  sampler.Process(MakeEdge(1, 2));
  SampleView view = sampler.View();
  EXPECT_DOUBLE_EQ(view.SubgraphEstimator({MakeEdge(0, 1), MakeEdge(1, 2)}),
                   1.0);
  // Any missing edge zeroes the product.
  EXPECT_DOUBLE_EQ(view.SubgraphEstimator({MakeEdge(0, 1), MakeEdge(2, 3)}),
                   0.0);
  // Empty subgraph: the empty product is 1 by convention.
  EXPECT_DOUBLE_EQ(view.SubgraphEstimator(std::initializer_list<Edge>{}),
                   1.0);
}

TEST(SampleViewTest, ForEachEdgeReportsConsistentProbabilities) {
  EdgeList graph = GenerateErdosRenyi(100, 500, 201).value();
  const std::vector<Edge> stream = MakePermutedStream(graph, 202);
  GpsSamplerOptions options;
  options.capacity = 100;
  options.seed = 203;
  GpsSampler sampler(options);
  for (const Edge& e : stream) sampler.Process(e);
  SampleView view = sampler.View();
  size_t visited = 0;
  view.ForEachEdge([&](const Edge& e, double weight, double p) {
    EXPECT_GT(weight, 0.0);
    EXPECT_GT(p, 0.0);
    EXPECT_LE(p, 1.0);
    EXPECT_DOUBLE_EQ(p, view.EdgeProbability(e));
    ++visited;
  });
  EXPECT_EQ(visited, view.NumSampledEdges());
}

TEST(SampleViewCovarianceTest, DisjointSubgraphsZero) {
  GpsSamplerOptions options;
  options.capacity = 10;
  options.seed = 3;
  GpsSampler sampler(options);
  for (NodeId i = 0; i < 8; i += 2) sampler.Process(MakeEdge(i, i + 1));
  SampleView view = sampler.View();
  EXPECT_DOUBLE_EQ(
      view.SubgraphCovarianceEstimator({MakeEdge(0, 1)}, {MakeEdge(2, 3)}),
      0.0);
}

TEST(SampleViewCovarianceTest, UnsampledSubgraphZero) {
  GpsSamplerOptions options;
  options.capacity = 10;
  options.seed = 3;
  GpsSampler sampler(options);
  sampler.Process(MakeEdge(0, 1));
  SampleView view = sampler.View();
  EXPECT_DOUBLE_EQ(view.SubgraphCovarianceEstimator(
                       {MakeEdge(0, 1)}, {MakeEdge(0, 1), MakeEdge(5, 6)}),
                   0.0);
}

TEST(SampleViewCovarianceTest, SelfCovarianceIsVarianceEstimator) {
  // With J1 == J2 == J the estimator must equal Ŝ_J (Ŝ_J - 1)
  // (Theorem 3(iii)).
  EdgeList graph = GenerateErdosRenyi(60, 250, 221).value();
  const std::vector<Edge> stream = MakePermutedStream(graph, 222);
  GpsSamplerOptions options;
  options.capacity = stream.size() / 3;
  options.seed = 223;
  GpsSampler sampler(options);
  for (const Edge& e : stream) sampler.Process(e);
  SampleView view = sampler.View();

  size_t checked = 0;
  view.ForEachEdge([&](const Edge& e, double, double) {
    // Build a wedge J = {e, f} with some sampled neighbor edge f.
    view.Graph().ForEachNeighbor(e.u, [&](NodeId nbr, SlotId) {
      if (nbr == e.v || checked > 20) return;
      const Edge f = MakeEdge(e.u, nbr);
      const Edge j[2] = {e, f};
      const double s = view.SubgraphEstimator(j);
      EXPECT_NEAR(view.SubgraphCovarianceEstimator(j, j), s * (s - 1.0),
                  1e-9 * (1.0 + s * s));
      ++checked;
    });
  });
  EXPECT_GT(checked, 0u);
}

TEST(SampleViewCovarianceTest, UnbiasedForOverlappingWedges) {
  // Two wedges sharing one edge: the mean of the covariance estimator over
  // independent sample paths must match the empirical covariance of the
  // two wedge estimators (Theorem 3(i)).
  EdgeList graph;
  graph.Add(0, 1);  // shared edge
  graph.Add(1, 2);  // wedge A = {(0,1), (1,2)}
  graph.Add(1, 3);  // wedge B = {(0,1), (1,3)}
  for (NodeId i = 10; i < 60; ++i) graph.Add(i, i + 100);  // filler
  const std::vector<Edge> stream = MakePermutedStream(graph, 231);

  const Edge wedge_a[2] = {MakeEdge(0, 1), MakeEdge(1, 2)};
  const Edge wedge_b[2] = {MakeEdge(0, 1), MakeEdge(1, 3)};

  OnlineStats sa, sb, sab, cov_est;
  const int trials = 4000;
  for (int trial = 0; trial < trials; ++trial) {
    GpsSamplerOptions options;
    options.capacity = stream.size() / 3;
    options.seed = 20000 + trial;
    GpsSampler sampler(options);
    for (const Edge& e : stream) sampler.Process(e);
    SampleView view = sampler.View();
    const double a = view.SubgraphEstimator(wedge_a);
    const double b = view.SubgraphEstimator(wedge_b);
    sa.Add(a);
    sb.Add(b);
    sab.Add(a * b);
    cov_est.Add(view.SubgraphCovarianceEstimator(wedge_a, wedge_b));
  }
  const double empirical_cov = sab.Mean() - sa.Mean() * sb.Mean();
  // Both quantities are noisy; require agreement within a factor band and
  // positivity (Theorem 3(ii)).
  EXPECT_GE(cov_est.Mean(), 0.0);
  EXPECT_GT(empirical_cov, 0.0);
  EXPECT_NEAR(cov_est.Mean(), empirical_cov,
              0.5 * empirical_cov + 5.0 * cov_est.StdError());
}

// Exact 4-clique count on a CSR graph (brute force over degree-ordered
// adjacency; fine at test scale).
double CountFourCliques(const CsrGraph& g) {
  double count = 0;
  const size_t n = g.NumNodes();
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b : g.Neighbors(a)) {
      if (b <= a) continue;
      for (NodeId c : g.Neighbors(a)) {
        if (c <= b || !g.HasEdge(b, c)) continue;
        for (NodeId d : g.Neighbors(a)) {
          if (d <= c || !g.HasEdge(b, d) || !g.HasEdge(c, d)) continue;
          count += 1;
        }
      }
    }
  }
  return count;
}

TEST(SampleViewTest, RetrospectiveFourCliqueQueryUnbiased) {
  // Theorem 2 for a non-built-in motif: enumerate 4-cliques inside the
  // sampled graph and sum HT products of their 6 edges.
  EdgeList graph = GenerateBarabasiAlbert(80, 8, 0.6, 211).value();
  CsrGraph csr = CsrGraph::FromEdgeList(graph);
  const double actual = CountFourCliques(csr);
  ASSERT_GT(actual, 5.0);
  const std::vector<Edge> stream = MakePermutedStream(graph, 212);

  OnlineStats est_stats;
  const int trials = 400;
  for (int trial = 0; trial < trials; ++trial) {
    GpsSamplerOptions options;
    options.capacity = stream.size() / 2;
    options.seed = 12000 + trial;
    // Weight 4-clique-adjacent edges upward via the custom hook.
    GpsSampler sampler(options);
    for (const Edge& e : stream) sampler.Process(e);
    SampleView view = sampler.View();

    // Enumerate sampled 4-cliques via the sampled adjacency.
    const SampledGraph& sg = view.Graph();
    double estimate = 0.0;
    sg.ForEachNeighbor(0, [](NodeId, SlotId) {});  // touch API
    for (NodeId a = 0; a < graph.NumNodes(); ++a) {
      std::vector<NodeId> nbrs;
      sg.ForEachNeighbor(a, [&](NodeId w, SlotId) {
        if (w > a) nbrs.push_back(w);
      });
      std::sort(nbrs.begin(), nbrs.end());
      for (size_t i = 0; i < nbrs.size(); ++i) {
        for (size_t j = i + 1; j < nbrs.size(); ++j) {
          if (!sg.HasEdge(MakeEdge(nbrs[i], nbrs[j]))) continue;
          for (size_t k = j + 1; k < nbrs.size(); ++k) {
            if (!sg.HasEdge(MakeEdge(nbrs[i], nbrs[k])) ||
                !sg.HasEdge(MakeEdge(nbrs[j], nbrs[k]))) {
              continue;
            }
            const Edge clique_edges[6] = {
                MakeEdge(a, nbrs[i]),        MakeEdge(a, nbrs[j]),
                MakeEdge(a, nbrs[k]),        MakeEdge(nbrs[i], nbrs[j]),
                MakeEdge(nbrs[i], nbrs[k]),  MakeEdge(nbrs[j], nbrs[k])};
            estimate += view.SubgraphEstimator(clique_edges);
          }
        }
      }
    }
    est_stats.Add(estimate);
  }
  EXPECT_NEAR(est_stats.Mean(), actual,
              std::max(4.0 * est_stats.StdError(), 0.05 * actual));
}

}  // namespace
}  // namespace gps
