// Tests for post-stream estimation (Algorithm 2): exactness when nothing
// was evicted, statistical unbiasedness when sampling is lossy, variance
// estimator calibration, and parameterized sweeps across graph families.

#include "core/post_stream.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/gps.h"
#include "gen/generators.h"
#include "graph/csr_graph.h"
#include "graph/exact.h"
#include "graph/stream.h"
#include "util/welford.h"

namespace gps {
namespace {

GraphEstimates RunGpsPost(const std::vector<Edge>& stream, size_t capacity,
                          uint64_t seed) {
  GpsSamplerOptions options;
  options.capacity = capacity;
  options.seed = seed;
  GpsSampler sampler(options);
  for (const Edge& e : stream) sampler.Process(e);
  return EstimatePostStream(sampler.reservoir());
}

TEST(PostStreamTest, EmptyReservoirGivesZeroEstimates) {
  GpsReservoir res(GpsOptions{10, 1});
  const GraphEstimates est = EstimatePostStream(res);
  EXPECT_EQ(est.triangles.value, 0.0);
  EXPECT_EQ(est.wedges.value, 0.0);
  EXPECT_EQ(est.triangles.variance, 0.0);
  EXPECT_EQ(est.ClusteringCoefficient().value, 0.0);
}

TEST(PostStreamTest, ExactWhenSampleHoldsWholeGraph) {
  // Capacity >= |K|: no eviction, z* = 0, all probabilities 1 -> estimates
  // are exact and variances are exactly zero.
  EdgeList graph = GenerateErdosRenyi(60, 250, 31).value();
  const std::vector<Edge> stream = MakePermutedStream(graph, 32);
  const ExactCounts actual = CountExact(CsrGraph::FromEdgeList(graph));

  const GraphEstimates est = RunGpsPost(stream, stream.size() + 10, 33);
  EXPECT_DOUBLE_EQ(est.triangles.value, actual.triangles);
  EXPECT_DOUBLE_EQ(est.wedges.value, actual.wedges);
  EXPECT_DOUBLE_EQ(est.triangles.variance, 0.0);
  EXPECT_DOUBLE_EQ(est.wedges.variance, 0.0);
  EXPECT_DOUBLE_EQ(est.tri_wedge_cov, 0.0);
  EXPECT_NEAR(est.ClusteringCoefficient().value,
              actual.ClusteringCoefficient(), 1e-12);
}

TEST(PostStreamTest, ExactOnSingleTriangle) {
  GpsSamplerOptions options;
  options.capacity = 10;
  options.seed = 3;
  GpsSampler sampler(options);
  sampler.Process(MakeEdge(0, 1));
  sampler.Process(MakeEdge(1, 2));
  sampler.Process(MakeEdge(0, 2));
  const GraphEstimates est = EstimatePostStream(sampler.reservoir());
  EXPECT_DOUBLE_EQ(est.triangles.value, 1.0);
  EXPECT_DOUBLE_EQ(est.wedges.value, 3.0);
  EXPECT_DOUBLE_EQ(est.ClusteringCoefficient().value, 1.0);
}

TEST(PostStreamTest, TriangleCountUnbiasedUnderEviction) {
  // Statistical unbiasedness (Theorem 2): mean of the estimator over many
  // independent sample paths must approach the true count.
  EdgeList graph = GenerateBarabasiAlbert(150, 5, 0.5, 41).value();
  const ExactCounts actual = CountExact(CsrGraph::FromEdgeList(graph));
  ASSERT_GT(actual.triangles, 50.0);
  const std::vector<Edge> stream = MakePermutedStream(graph, 42);

  OnlineStats tri, wed;
  const int trials = 300;
  for (int trial = 0; trial < trials; ++trial) {
    const GraphEstimates est =
        RunGpsPost(stream, stream.size() / 3, 1000 + trial);
    tri.Add(est.triangles.value);
    wed.Add(est.wedges.value);
  }
  // 4-sigma band around the true value.
  EXPECT_NEAR(tri.Mean(), actual.triangles, 4.0 * tri.StdError());
  EXPECT_NEAR(wed.Mean(), actual.wedges, 4.0 * wed.StdError());
}

TEST(PostStreamTest, VarianceEstimatorCalibrated) {
  // The mean of the unbiased variance estimator must approximate the
  // empirical variance of the point estimator (Corollary 3).
  EdgeList graph = GenerateWattsStrogatz(200, 8, 0.1, 51).value();
  const std::vector<Edge> stream = MakePermutedStream(graph, 52);

  OnlineStats est_values, var_estimates;
  const int trials = 300;
  for (int trial = 0; trial < trials; ++trial) {
    const GraphEstimates est =
        RunGpsPost(stream, stream.size() / 3, 2000 + trial);
    est_values.Add(est.triangles.value);
    var_estimates.Add(est.triangles.variance);
  }
  const double empirical_var = est_values.SampleVariance();
  ASSERT_GT(empirical_var, 0.0);
  const double mean_estimated_var = var_estimates.Mean();
  // Ratio within [0.5, 2.0]: both quantities are noisy with 300 trials.
  EXPECT_GT(mean_estimated_var / empirical_var, 0.5);
  EXPECT_LT(mean_estimated_var / empirical_var, 2.0);
}

TEST(PostStreamTest, ConfidenceIntervalsCoverTruth) {
  EdgeList graph = GenerateBarabasiAlbert(200, 5, 0.4, 61).value();
  const ExactCounts actual = CountExact(CsrGraph::FromEdgeList(graph));
  const std::vector<Edge> stream = MakePermutedStream(graph, 62);

  int covered = 0;
  const int trials = 200;
  for (int trial = 0; trial < trials; ++trial) {
    const GraphEstimates est =
        RunGpsPost(stream, stream.size() / 3, 3000 + trial);
    if (actual.triangles >= est.triangles.Lower() &&
        actual.triangles <= est.triangles.Upper()) {
      ++covered;
    }
  }
  // Nominal 95%; demand at least 85% to keep the test robust.
  EXPECT_GE(covered, static_cast<int>(0.85 * trials));
}

TEST(PostStreamTest, EstimatesImproveWithCapacity) {
  EdgeList graph = GenerateChungLu(500, 3000, 2.3, 71).value();
  const ExactCounts actual = CountExact(CsrGraph::FromEdgeList(graph));
  ASSERT_GT(actual.triangles, 0.0);
  const std::vector<Edge> stream = MakePermutedStream(graph, 72);

  auto mean_are = [&](size_t capacity) {
    OnlineStats are;
    for (int trial = 0; trial < 60; ++trial) {
      const GraphEstimates est =
          RunGpsPost(stream, capacity, 4000 + trial);
      are.Add(std::abs(est.triangles.value - actual.triangles) /
              actual.triangles);
    }
    return are.Mean();
  };
  const double are_small = mean_are(stream.size() / 10);
  const double are_large = mean_are(stream.size() / 2);
  EXPECT_LT(are_large, are_small);
}

// Parameterized family sweep: unbiasedness must hold on every topology.
struct FamilyCase {
  const char* name;
  EdgeList (*make)();
};

class PostStreamFamilyTest : public ::testing::TestWithParam<FamilyCase> {};

TEST_P(PostStreamFamilyTest, TriangleAndWedgeUnbiased) {
  EdgeList graph = GetParam().make();
  const ExactCounts actual = CountExact(CsrGraph::FromEdgeList(graph));
  if (actual.triangles < 5.0) GTEST_SKIP() << "too few triangles";
  const std::vector<Edge> stream = MakePermutedStream(graph, 81);

  OnlineStats tri;
  const int trials = 200;
  for (int trial = 0; trial < trials; ++trial) {
    tri.Add(RunGpsPost(stream, stream.size() / 3, 5000 + trial)
                .triangles.value);
  }
  EXPECT_NEAR(tri.Mean(), actual.triangles,
              std::max(4.0 * tri.StdError(), 0.02 * actual.triangles))
      << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Families, PostStreamFamilyTest,
    ::testing::Values(
        FamilyCase{"erdos_renyi",
                   [] { return GenerateErdosRenyi(150, 900, 91).value(); }},
        FamilyCase{"barabasi_albert",
                   [] {
                     return GenerateBarabasiAlbert(150, 5, 0.4, 92).value();
                   }},
        FamilyCase{"watts_strogatz",
                   [] {
                     return GenerateWattsStrogatz(200, 8, 0.15, 93).value();
                   }},
        FamilyCase{"grid",
                   [] { return GenerateGrid(18, 18, 0.5, 94).value(); }},
        FamilyCase{"chung_lu",
                   [] { return GenerateChungLu(200, 900, 2.2, 95).value(); }}),
    [](const ::testing::TestParamInfo<FamilyCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace gps
