// Tests for GPS-STREAM v1 (graph/binary_stream.h): round trips, strict
// named refusals on every corruption class, and the zero-copy engine
// feed's byte-identity with a per-edge Process loop.

#include "graph/binary_stream.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/ingest.h"
#include "engine/sharded_engine.h"
#include "graph/types.h"
#include "util/digest.h"

namespace gps {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

/// Recomputes the header digest after a deliberate header edit, so the
/// reader gets past the digest check and reaches the field being tested.
void FixHeaderDigest(std::string* bytes) {
  const uint64_t digest = Fnv1a64Words(bytes->data(), 32);
  std::memcpy(bytes->data() + 32, &digest, sizeof(digest));
}

std::vector<Edge> SampleEdges() {
  // Duplicates, a reversed arrival, and a self loop: a STREAM carries all
  // of them — conversion must not simplify.
  return {{0, 1}, {1, 2}, {2, 1}, {1, 2}, {3, 3}, {100000, 7}};
}

class BinaryStreamTest : public testing::Test {
 protected:
  void TearDown() override {
    for (const std::string& path : cleanup_) std::remove(path.c_str());
  }
  std::string Track(const std::string& path) {
    cleanup_.push_back(path);
    return path;
  }
  std::vector<std::string> cleanup_;
};

TEST_F(BinaryStreamTest, RoundTripPreservesOrderAndDuplicates) {
  const std::vector<Edge> edges = SampleEdges();
  const std::string path = Track(TempPath("bs_roundtrip.gps"));
  ASSERT_TRUE(WriteBinaryStream(path, edges).ok());

  auto reader = BinaryStreamReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ(reader->edge_count(), edges.size());
  EXPECT_EQ(reader->num_blocks(), 1u);
  ASSERT_TRUE(reader->VerifyAll().ok());

  auto block = reader->Block(0);
  ASSERT_TRUE(block.ok()) << block.status().ToString();
  ASSERT_EQ(block->size(), edges.size());
  for (size_t i = 0; i < edges.size(); ++i) {
    EXPECT_EQ((*block)[i], edges[i]) << "edge " << i;
  }
}

TEST_F(BinaryStreamTest, EmptyStreamRoundTrip) {
  const std::string path = Track(TempPath("bs_empty.gps"));
  ASSERT_TRUE(WriteBinaryStream(path, {}).ok());
  auto reader = BinaryStreamReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ(reader->edge_count(), 0u);
  EXPECT_EQ(reader->num_blocks(), 0u);
  EXPECT_TRUE(reader->VerifyAll().ok());
  EXPECT_EQ(ReadFileBytes(path).size(), kBinaryStreamHeaderBytes);
}

TEST_F(BinaryStreamTest, ShortFinalBlock) {
  std::vector<Edge> edges;
  for (NodeId i = 0; i < 10; ++i) edges.push_back({i, i + 1});
  const std::string path = Track(TempPath("bs_blocks.gps"));
  BinaryStreamWriteOptions options;
  options.block_edges = 4;
  ASSERT_TRUE(WriteBinaryStream(path, edges, options).ok());

  auto reader = BinaryStreamReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ(reader->block_edges(), 4u);
  EXPECT_EQ(reader->num_blocks(), 3u);
  auto last = reader->Block(2);
  ASSERT_TRUE(last.ok());
  EXPECT_EQ(last->size(), 2u);  // 10 = 4 + 4 + 2
  EXPECT_EQ((*last)[1], (Edge{9, 10}));
  // One past the end is a named OutOfRange, not UB.
  auto beyond = reader->Block(3);
  ASSERT_FALSE(beyond.ok());
  EXPECT_EQ(beyond.status().code(), StatusCode::kOutOfRange);
}

TEST_F(BinaryStreamTest, LooksLikeBinaryStreamSniffsMagic) {
  const std::string binary = Track(TempPath("bs_sniff.gps"));
  ASSERT_TRUE(WriteBinaryStream(binary, SampleEdges()).ok());
  EXPECT_TRUE(LooksLikeBinaryStream(binary));

  const std::string text = Track(TempPath("bs_sniff.txt"));
  WriteFileBytes(text, "0 1\n2 3\n");
  EXPECT_FALSE(LooksLikeBinaryStream(text));
  EXPECT_FALSE(LooksLikeBinaryStream(TempPath("bs_sniff_missing.gps")));
}

TEST_F(BinaryStreamTest, WriterRejectsInvalidNodeSentinel) {
  const std::vector<Edge> edges = {{0, 1}, {kInvalidNode, 2}};
  const std::string path = Track(TempPath("bs_invalid_write.gps"));
  Status s = WriteBinaryStream(path, edges);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.ToString().find("invalid-node sentinel"), std::string::npos);
}

TEST_F(BinaryStreamTest, WriterRejectsBlockEdgesOutOfRange) {
  BinaryStreamWriteOptions options;
  options.block_edges = 0;
  const std::string path = Track(TempPath("bs_badblock.gps"));
  EXPECT_FALSE(WriteBinaryStream(path, SampleEdges(), options).ok());
  options.block_edges = kBinaryStreamMaxBlockEdges + 1;
  EXPECT_FALSE(WriteBinaryStream(path, SampleEdges(), options).ok());
}

// ---- Corruption refusals: each class rejected by name --------------------

class CorruptionTest : public BinaryStreamTest {
 protected:
  /// A fresh valid two-block file plus its raw bytes.
  void SetUp() override {
    path_ = Track(TempPath("bs_corrupt.gps"));
    std::vector<Edge> edges;
    for (NodeId i = 0; i < 6; ++i) edges.push_back({i, i + 1});
    BinaryStreamWriteOptions options;
    options.block_edges = 4;
    ASSERT_TRUE(WriteBinaryStream(path_, edges, options).ok());
    bytes_ = ReadFileBytes(path_);
  }

  Status OpenError(const std::string& mutated) {
    WriteFileBytes(path_, mutated);
    auto reader = BinaryStreamReader::Open(path_);
    if (!reader.ok()) return reader.status();
    return reader->VerifyAll();
  }

  std::string path_;
  std::string bytes_;
};

TEST_F(CorruptionTest, RejectsBadMagic) {
  std::string mutated = bytes_;
  mutated[0] = 'X';
  const Status s = OpenError(mutated);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("not a GPS-STREAM file (bad magic)"),
            std::string::npos);
}

TEST_F(CorruptionTest, RejectsFutureVersion) {
  std::string mutated = bytes_;
  mutated[8] = 2;  // version u32 LE at offset 8
  FixHeaderDigest(&mutated);  // a valid v2 writer would digest its header
  const Status s = OpenError(mutated);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("unsupported GPS-STREAM version 2"),
            std::string::npos);
  EXPECT_NE(s.ToString().find("this build reads v1"), std::string::npos);
}

TEST_F(CorruptionTest, RejectsUnknownFlags) {
  std::string mutated = bytes_;
  mutated[12] = 1;  // flags u32 LE at offset 12
  FixHeaderDigest(&mutated);
  const Status s = OpenError(mutated);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("unknown GPS-STREAM flags"),
            std::string::npos);
}

TEST_F(CorruptionTest, RejectsUnsupportedNodeWidth) {
  std::string mutated = bytes_;
  mutated[16] = 8;  // node-id width at offset 16
  FixHeaderDigest(&mutated);
  const Status s = OpenError(mutated);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("node-id width 8"), std::string::npos);
}

TEST_F(CorruptionTest, RejectsCorruptHeaderByDigest) {
  std::string mutated = bytes_;
  mutated[20] ^= 0x01;  // flip one edge-count bit, leave digest stale
  const Status s = OpenError(mutated);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("header digest mismatch"), std::string::npos);
}

TEST_F(CorruptionTest, RejectsTruncatedHeader) {
  const Status s = OpenError(bytes_.substr(0, 17));
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("truncated GPS-STREAM header"),
            std::string::npos);
}

TEST_F(CorruptionTest, RejectsTruncatedBlock) {
  const Status s = OpenError(bytes_.substr(0, bytes_.size() - 5));
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("truncated GPS-STREAM file"),
            std::string::npos);
}

TEST_F(CorruptionTest, RejectsTrailingBytes) {
  const Status s = OpenError(bytes_ + "extra");
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("trailing bytes"), std::string::npos);
}

TEST_F(CorruptionTest, RejectsFlippedPayloadByte) {
  std::string mutated = bytes_;
  mutated[kBinaryStreamHeaderBytes + 3] ^= 0x40;  // inside block 0 payload
  const Status s = OpenError(mutated);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("block 0 digest mismatch"),
            std::string::npos);
}

TEST_F(CorruptionTest, RejectsFlippedDigestByte) {
  std::string mutated = bytes_;
  mutated[mutated.size() - 1] ^= 0x01;  // last byte = block 1's digest
  const Status s = OpenError(mutated);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("block 1 digest mismatch"),
            std::string::npos);
}

TEST_F(CorruptionTest, RejectsSmuggledInvalidNodeId) {
  // A hand-crafted file can carry the kInvalidNode sentinel WITH a valid
  // digest; the reader must still refuse it before it reaches an
  // estimator.
  std::string mutated = bytes_;
  const size_t payload0 = kBinaryStreamHeaderBytes;
  const uint32_t invalid = kInvalidNode;
  std::memcpy(mutated.data() + payload0, &invalid, sizeof(invalid));
  const size_t block0_payload_bytes = 4 * sizeof(Edge);
  const uint64_t digest =
      Fnv1a64Words(mutated.data() + payload0, block0_payload_bytes);
  std::memcpy(mutated.data() + payload0 + block0_payload_bytes, &digest,
              sizeof(digest));
  const Status s = OpenError(mutated);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("invalid node id in GPS-STREAM block 0"),
            std::string::npos);
}

TEST_F(CorruptionTest, RejectsDirectory) {
  auto reader = BinaryStreamReader::Open(testing::TempDir());
  ASSERT_FALSE(reader.ok());
  EXPECT_NE(reader.status().ToString().find("is a directory"),
            std::string::npos);
}

TEST_F(CorruptionTest, RejectsMissingFile) {
  auto reader = BinaryStreamReader::Open(TempPath("bs_missing.gps"));
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kIoError);
}

// ---- Zero-copy engine feed -----------------------------------------------

TEST_F(BinaryStreamTest, IngestBinaryStreamMatchesProcessLoop) {
  // The acceptance contract: feeding the engine straight from mapped
  // blocks must be byte-identical to the per-edge Process loop over the
  // same stream — same reservoirs, same estimates, same counters.
  std::vector<Edge> stream;
  uint32_t x = 12345;
  for (int i = 0; i < 20000; ++i) {
    x = x * 1664525 + 1013904223;  // LCG: deterministic pseudo-stream
    stream.push_back({x % 500, (x >> 16) % 500});
  }
  const std::string path = Track(TempPath("bs_engine_feed.gps"));
  BinaryStreamWriteOptions options;
  options.block_edges = 1000;
  ASSERT_TRUE(WriteBinaryStream(path, stream, options).ok());

  ShardedEngineOptions engine_options;
  engine_options.sampler.capacity = 700;
  engine_options.sampler.seed = 42;
  engine_options.num_shards = 3;

  ShardedEngine from_file(engine_options);
  auto fed = IngestBinaryStream(path, from_file);
  ASSERT_TRUE(fed.ok()) << fed.status().ToString();
  EXPECT_EQ(*fed, stream.size());
  from_file.Finish();

  ShardedEngine from_loop(engine_options);
  for (const Edge& e : stream) from_loop.Process(e);
  from_loop.Finish();

  EXPECT_EQ(from_file.edges_processed(), from_loop.edges_processed());
  const GraphEstimates a = from_file.MergedEstimates();
  const GraphEstimates b = from_loop.MergedEstimates();
  EXPECT_EQ(a.triangles.value, b.triangles.value);
  EXPECT_EQ(a.triangles.variance, b.triangles.variance);
  EXPECT_EQ(a.wedges.value, b.wedges.value);
  EXPECT_EQ(a.wedges.variance, b.wedges.variance);
}

TEST_F(BinaryStreamTest, IngestBinaryStreamPropagatesRefusals) {
  const std::string path = Track(TempPath("bs_engine_corrupt.gps"));
  ASSERT_TRUE(WriteBinaryStream(path, SampleEdges()).ok());
  std::string mutated = ReadFileBytes(path);
  mutated[mutated.size() - 1] ^= 0xff;
  WriteFileBytes(path, mutated);

  ShardedEngineOptions engine_options;
  engine_options.sampler.capacity = 10;
  ShardedEngine engine(engine_options);
  auto fed = IngestBinaryStream(path, engine);
  ASSERT_FALSE(fed.ok());
  EXPECT_NE(fed.status().ToString().find("digest mismatch"),
            std::string::npos);
  engine.Finish();
}

}  // namespace
}  // namespace gps
