// Tests for the distributed shard-checkpoint pipeline: SerializeShards +
// MergeFromCheckpoints must reproduce the live engine's merged estimates
// exactly (bit-for-bit, since checkpoints round-trip doubles exactly and
// the merge reuses the live code path), and incompatible, incomplete, or
// corrupt checkpoint sets must fail with typed Status errors.

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/serialize.h"
#include "engine/sharded_engine.h"
#include "engine_test_util.h"
#include "gen/generators.h"
#include "graph/stream.h"
#include "util/status.h"

namespace gps {
namespace {

std::vector<Edge> TestStream(uint64_t seed) {
  EdgeList graph = GenerateBarabasiAlbert(400, 5, 0.4, seed).value();
  return MakePermutedStream(graph, seed + 1);
}

std::filesystem::path FreshDir(const std::string& name) {
  return engine_test::FreshDir("engine_ckpt", name);
}

ShardedEngineOptions EngineOptions(uint32_t num_shards, uint64_t seed) {
  ShardedEngineOptions options;
  options.sampler.capacity = 600;
  options.sampler.seed = seed;
  options.num_shards = num_shards;
  options.batch_size = 128;
  return options;
}

/// Streams, checkpoints into `dir` (when given), and returns the live
/// merged estimates.
GraphEstimates RunAndCheckpoint(const std::vector<Edge>& stream,
                                const ShardedEngineOptions& options,
                                const std::filesystem::path* dir) {
  ShardedEngine engine(options);
  for (const Edge& e : stream) engine.Process(e);
  engine.Finish();
  if (dir != nullptr) {
    const Status s = engine.SerializeShards(dir->string());
    EXPECT_TRUE(s.ok()) << s.ToString();
  }
  return engine.MergedEstimates();
}

using engine_test::ExpectExactlyEqual;
using engine_test::ManifestPath;

TEST(EngineCheckpointTest, MergeReproducesLiveEstimatesExactly) {
  const std::vector<Edge> stream = TestStream(701);
  for (const uint32_t k : {1u, 2u, 4u, 8u}) {
    SCOPED_TRACE("K=" + std::to_string(k));
    const std::filesystem::path dir = FreshDir("k" + std::to_string(k));
    const GraphEstimates live =
        RunAndCheckpoint(stream, EngineOptions(k, 77), &dir);
    const std::vector<std::string> manifests = {ManifestPath(dir)};
    auto merged = ShardedEngine::MergeFromCheckpoints(manifests);
    ASSERT_TRUE(merged.ok()) << merged.status().ToString();
    ExpectExactlyEqual(*merged, live);
    std::filesystem::remove_all(dir);
  }
}

TEST(EngineCheckpointTest, PartialManifestsFromDifferentHostsMerge) {
  const std::vector<Edge> stream = TestStream(711);
  const std::filesystem::path dir = FreshDir("hosts");
  const GraphEstimates live =
      RunAndCheckpoint(stream, EngineOptions(4, 99), &dir);

  // Split the manifest in two, as if shards {0,1} and {2,3} were
  // checkpointed by different hosts sharing only the layout.
  std::ifstream min(ManifestPath(dir), std::ios::binary);
  auto full = DeserializeManifest(min);
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  ASSERT_EQ(full->entries.size(), 4u);
  ShardManifest host_a = *full;
  ShardManifest host_b = *full;
  host_a.entries.assign(full->entries.begin(), full->entries.begin() + 2);
  host_b.entries.assign(full->entries.begin() + 2, full->entries.end());
  const std::string path_a = (dir / "host-a.gpsm").string();
  const std::string path_b = (dir / "host-b.gpsm").string();
  {
    std::ofstream out(path_a, std::ios::binary);
    ASSERT_TRUE(SerializeManifest(host_a, out).ok());
  }
  {
    std::ofstream out(path_b, std::ios::binary);
    ASSERT_TRUE(SerializeManifest(host_b, out).ok());
  }

  auto merged = ShardedEngine::MergeFromCheckpoints(
      std::vector<std::string>{path_a, path_b});
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  ExpectExactlyEqual(*merged, live);

  // A partial set fails with a typed coverage error.
  auto incomplete = ShardedEngine::MergeFromCheckpoints(
      std::vector<std::string>{path_a});
  ASSERT_FALSE(incomplete.ok());
  EXPECT_EQ(incomplete.status().code(), StatusCode::kFailedPrecondition);

  // The same shard claimed twice fails.
  auto duplicated = ShardedEngine::MergeFromCheckpoints(
      std::vector<std::string>{path_a, path_a, path_b});
  ASSERT_FALSE(duplicated.ok());
  EXPECT_EQ(duplicated.status().code(), StatusCode::kFailedPrecondition);

  std::filesystem::remove_all(dir);
}

TEST(EngineCheckpointTest, RejectsMismatchedLayouts) {
  const std::vector<Edge> stream = TestStream(721);
  const std::filesystem::path dir_base = FreshDir("base");
  const std::filesystem::path dir_k2 = FreshDir("k2");
  const std::filesystem::path dir_seed = FreshDir("seed");
  const std::filesystem::path dir_weight = FreshDir("weight");
  RunAndCheckpoint(stream, EngineOptions(4, 5), &dir_base);
  RunAndCheckpoint(stream, EngineOptions(2, 5), &dir_k2);
  RunAndCheckpoint(stream, EngineOptions(4, 6), &dir_seed);
  ShardedEngineOptions uniform = EngineOptions(4, 5);
  uniform.sampler.weight.kind = WeightKind::kUniform;
  RunAndCheckpoint(stream, uniform, &dir_weight);

  const struct {
    const char* name;
    std::filesystem::path other;
    const char* expect_substr;
  } kCases[] = {
      {"shard count", dir_k2, "shard count"},
      {"base seed", dir_seed, "base seed"},
      {"weight config", dir_weight, "weight configuration"},
  };
  for (const auto& c : kCases) {
    SCOPED_TRACE(c.name);
    auto merged = ShardedEngine::MergeFromCheckpoints(
        std::vector<std::string>{ManifestPath(dir_base),
                                 ManifestPath(c.other)});
    ASSERT_FALSE(merged.ok());
    EXPECT_EQ(merged.status().code(), StatusCode::kFailedPrecondition);
    EXPECT_NE(merged.status().message().find(c.expect_substr),
              std::string::npos)
        << merged.status().ToString();
  }

  for (const auto& d : {dir_base, dir_k2, dir_seed, dir_weight}) {
    std::filesystem::remove_all(d);
  }
}

TEST(EngineCheckpointTest, RejectsCorruptShardFile) {
  const std::vector<Edge> stream = TestStream(731);
  const std::filesystem::path dir = FreshDir("corrupt");
  RunAndCheckpoint(stream, EngineOptions(2, 13), &dir);
  {
    std::ofstream out(dir / "shard-0000.gps",
                      std::ios::binary | std::ios::app);
    out << "tamper";
  }
  auto merged = ShardedEngine::MergeFromCheckpoints(
      std::vector<std::string>{ManifestPath(dir)});
  ASSERT_FALSE(merged.ok());
  EXPECT_EQ(merged.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(merged.status().message().find("digest"), std::string::npos)
      << merged.status().ToString();
  std::filesystem::remove_all(dir);
}

TEST(EngineCheckpointTest, RejectsMissingShardFile) {
  const std::vector<Edge> stream = TestStream(741);
  const std::filesystem::path dir = FreshDir("missing");
  RunAndCheckpoint(stream, EngineOptions(2, 17), &dir);
  std::filesystem::remove(dir / "shard-0001.gps");
  auto merged = ShardedEngine::MergeFromCheckpoints(
      std::vector<std::string>{ManifestPath(dir)});
  ASSERT_FALSE(merged.ok());
  EXPECT_EQ(merged.status().code(), StatusCode::kNotFound);
  std::filesystem::remove_all(dir);
}

TEST(EngineCheckpointTest, PostStreamShardsCannotCheckpoint) {
  const std::vector<Edge> stream = TestStream(751);
  ShardedEngineOptions options = EngineOptions(2, 19);
  options.merge_mode = MergeMode::kPostStreamMerged;
  ShardedEngine engine(options);
  for (const Edge& e : stream) engine.Process(e);
  engine.Finish();
  const std::filesystem::path dir = FreshDir("post");
  const Status s = engine.SerializeShards(dir.string());
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
}

TEST(EngineCheckpointTest, MidStreamCheckpointKeepsEngineUsable) {
  // SerializeShards drains but does not finish: a checkpoint taken midway
  // must reflect the prefix only, and the engine must keep streaming to
  // the same final state as an uninterrupted run.
  const std::vector<Edge> stream = TestStream(761);
  const std::filesystem::path dir = FreshDir("mid");
  const ShardedEngineOptions options = EngineOptions(4, 23);

  ShardedEngine engine(options);
  const size_t half = stream.size() / 2;
  for (size_t i = 0; i < half; ++i) engine.Process(stream[i]);
  ASSERT_TRUE(engine.SerializeShards(dir.string()).ok());
  for (size_t i = half; i < stream.size(); ++i) engine.Process(stream[i]);
  engine.Finish();
  const GraphEstimates full_live = engine.MergedEstimates();

  // The mid-stream checkpoint merges to the prefix-only estimates.
  ShardedEngine prefix_engine(options);
  for (size_t i = 0; i < half; ++i) prefix_engine.Process(stream[i]);
  prefix_engine.Finish();
  auto merged = ShardedEngine::MergeFromCheckpoints(
      std::vector<std::string>{ManifestPath(dir)});
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  ExpectExactlyEqual(*merged, prefix_engine.MergedEstimates());

  // And the interrupted engine's final state matches an uninterrupted run.
  ShardedEngine uninterrupted(options);
  for (const Edge& e : stream) uninterrupted.Process(e);
  uninterrupted.Finish();
  ExpectExactlyEqual(full_live, uninterrupted.MergedEstimates());

  std::filesystem::remove_all(dir);
}

TEST(EngineCheckpointTest, FailedCheckpointDoesNotClobberExisting) {
  // A rejected re-checkpoint must fail BEFORE touching the directory: a
  // previous valid checkpoint there stays loadable.
  const std::vector<Edge> stream = TestStream(771);
  const std::filesystem::path dir = FreshDir("noclobber");
  const GraphEstimates live =
      RunAndCheckpoint(stream, EngineOptions(2, 29), &dir);

  ShardedEngineOptions bad = EngineOptions(2, 29);
  bad.sampler.weight.kind = WeightKind::kCustom;
  bad.sampler.weight.custom = [](const Edge&, const SampledGraph&) {
    return 1.0;
  };
  ShardedEngine engine(bad);
  for (size_t i = 0; i < 100 && i < stream.size(); ++i) {
    engine.Process(stream[i]);
  }
  engine.Finish();
  const Status s = engine.SerializeShards(dir.string());
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);

  auto merged = ShardedEngine::MergeFromCheckpoints(
      std::vector<std::string>{ManifestPath(dir)});
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  ExpectExactlyEqual(*merged, live);
  std::filesystem::remove_all(dir);
}

TEST(EngineCheckpointTest, MotifCheckpointsMergeExactly) {
  // A motif-configured run checkpoints its per-shard accumulators into
  // the v3 manifest; MergeFromCheckpointsDetailed must reproduce the live
  // merged motif estimates and edge count bit for bit, at every K.
  const std::vector<Edge> stream = TestStream(781);
  for (const uint32_t k : {1u, 2u, 4u}) {
    SCOPED_TRACE("K=" + std::to_string(k));
    ShardedEngineOptions options = EngineOptions(k, 31);
    options.motifs = {"tri", "4clique", "3path"};
    const std::filesystem::path dir = FreshDir("motif-k" + std::to_string(k));

    ShardedEngine engine(options);
    for (const Edge& e : stream) engine.Process(e);
    engine.Finish();
    ASSERT_TRUE(engine.SerializeShards(dir.string()).ok());
    const GraphEstimates live = engine.MergedEstimates();
    const std::vector<MotifEstimate> live_motifs =
        engine.MergedMotifEstimates();
    const double live_edges = engine.MergedEdgeCountEstimate();

    auto merged = ShardedEngine::MergeFromCheckpointsDetailed(
        std::vector<std::string>{ManifestPath(dir)});
    ASSERT_TRUE(merged.ok()) << merged.status().ToString();
    ExpectExactlyEqual(merged->graph, live);
    engine_test::ExpectMotifsExactlyEqual(merged->motifs, live_motifs);
    EXPECT_EQ(merged->edge_count, live_edges);
    std::filesystem::remove_all(dir);
  }
}

TEST(EngineCheckpointTest, RejectsMismatchedMotifSets) {
  // Manifests of one run must agree on the ordered motif suite.
  const std::vector<Edge> stream = TestStream(791);
  const std::filesystem::path dir_a = FreshDir("motifs-a");
  const std::filesystem::path dir_b = FreshDir("motifs-b");
  ShardedEngineOptions options = EngineOptions(2, 37);
  options.motifs = {"tri"};
  RunAndCheckpoint(stream, options, &dir_a);
  options.motifs = {"tri", "4clique"};
  RunAndCheckpoint(stream, options, &dir_b);

  // Cross-wire: shard 0 from run A, shard 1 from run B (rewrite the
  // manifests to cover disjoint shards so only the motif sets disagree).
  auto load = [](const std::filesystem::path& dir) {
    std::ifstream in(ManifestPath(dir), std::ios::binary);
    auto m = DeserializeManifest(in);
    EXPECT_TRUE(m.ok()) << m.status().ToString();
    return *m;
  };
  ShardManifest a = load(dir_a);
  ShardManifest b = load(dir_b);
  a.entries.resize(1);
  b.entries.erase(b.entries.begin());
  const std::string path_a = (dir_a / "half.gpsm").string();
  const std::string path_b = (dir_b / "half.gpsm").string();
  {
    std::ofstream out(path_a, std::ios::binary);
    ASSERT_TRUE(SerializeManifest(a, out).ok());
  }
  {
    std::ofstream out(path_b, std::ios::binary);
    ASSERT_TRUE(SerializeManifest(b, out).ok());
  }
  auto merged = ShardedEngine::MergeFromCheckpoints(
      std::vector<std::string>{path_a, path_b});
  ASSERT_FALSE(merged.ok());
  EXPECT_EQ(merged.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(merged.status().message().find("motif"), std::string::npos)
      << merged.status().ToString();
  std::filesystem::remove_all(dir_a);
  std::filesystem::remove_all(dir_b);
}

TEST(EngineCheckpointTest, MergeRequiresAtLeastOneManifest) {
  auto merged =
      ShardedEngine::MergeFromCheckpoints(std::vector<std::string>{});
  ASSERT_FALSE(merged.ok());
  EXPECT_EQ(merged.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace gps
