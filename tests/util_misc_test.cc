// Tests for Status/Result, OnlineStats, timers, and text formatting.

#include <gtest/gtest.h>

#include "util/status.h"
#include "util/table.h"
#include "util/timer.h"
#include "util/welford.h"

namespace gps {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad m");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad m");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad m");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kOutOfRange, StatusCode::kFailedPrecondition,
        StatusCode::kIoError, StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeName(code), "UNKNOWN");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(5);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 5);
  EXPECT_EQ(*r, 5);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(3));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 3);
}

TEST(OnlineStatsTest, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.Count(), 0u);
  EXPECT_EQ(s.Mean(), 0.0);
  EXPECT_EQ(s.SampleVariance(), 0.0);
}

TEST(OnlineStatsTest, KnownValues) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.Count(), 8u);
  EXPECT_DOUBLE_EQ(s.Mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.PopulationVariance(), 4.0);
  EXPECT_NEAR(s.SampleVariance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.Min(), 2.0);
  EXPECT_EQ(s.Max(), 9.0);
}

TEST(OnlineStatsTest, MergeEqualsConcatenation) {
  OnlineStats all, a, b;
  for (int i = 0; i < 100; ++i) {
    const double x = i * 0.37 - 5.0;
    all.Add(x);
    (i % 2 == 0 ? a : b).Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.Count(), all.Count());
  EXPECT_NEAR(a.Mean(), all.Mean(), 1e-12);
  EXPECT_NEAR(a.SampleVariance(), all.SampleVariance(), 1e-9);
  EXPECT_EQ(a.Min(), all.Min());
  EXPECT_EQ(a.Max(), all.Max());
}

TEST(OnlineStatsTest, MergeWithEmpty) {
  OnlineStats a, empty;
  a.Add(1.0);
  a.Merge(empty);
  EXPECT_EQ(a.Count(), 1u);
  empty.Merge(a);
  EXPECT_EQ(empty.Count(), 1u);
  EXPECT_EQ(empty.Mean(), 1.0);
}

TEST(WallTimerTest, MeasuresElapsedTime) {
  WallTimer t;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GT(t.ElapsedSeconds(), 0.0);
  EXPECT_GT(t.ElapsedMicros(), 0.0);
}

TEST(HumanCountTest, Suffixes) {
  EXPECT_EQ(HumanCount(0), "0");
  EXPECT_EQ(HumanCount(999), "999");
  EXPECT_EQ(HumanCount(1000), "1.0K");
  EXPECT_EQ(HumanCount(56300000), "56.3M");
  EXPECT_EQ(HumanCount(4.9e9), "4.9B");
  EXPECT_EQ(HumanCount(1.8e12), "1.8T");
  EXPECT_EQ(HumanCount(-2500000), "-2.5M");
}

TEST(FormatDoubleTest, TrimsZeros) {
  EXPECT_EQ(FormatDouble(0.0036), "0.0036");
  EXPECT_EQ(FormatDouble(0.2160), "0.216");
  EXPECT_EQ(FormatDouble(1.0), "1");
  EXPECT_EQ(FormatDouble(0.0), "0");
  EXPECT_EQ(FormatDouble(2.5, 1), "2.5");
}

TEST(TextTableTest, RendersAlignedColumns) {
  TextTable t({"graph", "ARE"});
  t.AddRow({"soc-orkut-sim", "0.0028"});
  t.AddSeparator();
  t.AddRow({"x", "1"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("graph"), std::string::npos);
  EXPECT_NE(s.find("soc-orkut-sim"), std::string::npos);
  EXPECT_NE(s.find("-+-"), std::string::npos);
  // Header row and data rows must have equal width.
  const size_t first_newline = s.find('\n');
  const size_t second_newline = s.find('\n', first_newline + 1);
  EXPECT_EQ(first_newline, second_newline - first_newline - 1);
}

}  // namespace
}  // namespace gps
