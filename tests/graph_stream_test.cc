// Tests for stream construction: permutation determinism, content
// preservation, and the pull-based stream interface.

#include "graph/stream.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "gen/generators.h"

namespace gps {
namespace {

EdgeList SmallGraph() {
  return GenerateErdosRenyi(50, 200, 21).value();
}

TEST(StreamTest, PermutationPreservesEdgeSet) {
  EdgeList graph = SmallGraph();
  std::vector<Edge> stream = MakePermutedStream(graph, 1);
  EXPECT_EQ(stream.size(), graph.NumEdges());
  std::set<uint64_t> original, streamed;
  for (const Edge& e : graph.Edges()) original.insert(EdgeKey(e));
  for (const Edge& e : stream) streamed.insert(EdgeKey(e));
  EXPECT_EQ(original, streamed);
}

TEST(StreamTest, SameSeedSameOrder) {
  EdgeList graph = SmallGraph();
  std::vector<Edge> a = MakePermutedStream(graph, 7);
  std::vector<Edge> b = MakePermutedStream(graph, 7);
  EXPECT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(StreamTest, DifferentSeedsDifferentOrder) {
  EdgeList graph = SmallGraph();
  std::vector<Edge> a = MakePermutedStream(graph, 7);
  std::vector<Edge> b = MakePermutedStream(graph, 8);
  size_t same_position = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] == b[i]) ++same_position;
  }
  EXPECT_LT(same_position, a.size() / 4);
}

TEST(StreamTest, SimplifiesBeforePermuting) {
  EdgeList dirty;
  dirty.Add(1, 2);
  dirty.Add(2, 1);
  dirty.Add(3, 3);
  dirty.Add(2, 3);
  std::vector<Edge> stream = MakePermutedStream(dirty, 5);
  EXPECT_EQ(stream.size(), 2u);
  for (const Edge& e : stream) {
    EXPECT_FALSE(e.IsSelfLoop());
    EXPECT_LT(e.u, e.v);
  }
}

TEST(VectorStreamTest, NextAndReset) {
  EdgeList graph = SmallGraph();
  VectorStream stream = MakePermutedVectorStream(graph, 3);
  EXPECT_EQ(stream.SizeHint(), graph.NumEdges());

  std::vector<Edge> first_pass;
  Edge e;
  while (stream.Next(&e)) first_pass.push_back(e);
  EXPECT_EQ(first_pass.size(), graph.NumEdges());
  EXPECT_EQ(stream.Position(), graph.NumEdges());
  EXPECT_FALSE(stream.Next(&e));

  stream.Reset();
  EXPECT_EQ(stream.Position(), 0u);
  std::vector<Edge> second_pass;
  while (stream.Next(&e)) second_pass.push_back(e);
  EXPECT_EQ(first_pass.size(), second_pass.size());
  for (size_t i = 0; i < first_pass.size(); ++i) {
    EXPECT_EQ(first_pass[i], second_pass[i]);
  }
}

TEST(VectorStreamTest, EmptyStream) {
  VectorStream stream((std::vector<Edge>()));
  Edge e;
  EXPECT_FALSE(stream.Next(&e));
  EXPECT_EQ(stream.SizeHint(), 0u);
}

}  // namespace
}  // namespace gps
