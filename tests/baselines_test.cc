// Tests for the baseline algorithms: TRIEST (base/impr), MASCOT
// (improved/basic), NSAMP, and the uniform reservoir. Accuracy claims on
// generator graphs are gated through the shared statistical harness
// (tests/stat_harness.h, trial count scaled by GPS_STAT_TRIALS).

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/mascot.h"
#include "baselines/nsamp.h"
#include "baselines/triest.h"
#include "baselines/uniform_reservoir.h"
#include "gen/generators.h"
#include "graph/csr_graph.h"
#include "graph/exact.h"
#include "graph/stream.h"
#include "stat_harness.h"
#include "util/welford.h"

namespace gps {
namespace {

struct TestGraph {
  EdgeList graph;
  std::vector<Edge> stream;
  double triangles = 0;
};

TestGraph MakeTestGraph(uint64_t seed) {
  TestGraph out;
  out.graph = GenerateBarabasiAlbert(150, 5, 0.5, seed).value();
  out.stream = MakePermutedStream(out.graph, seed + 1);
  out.triangles = CountExact(CsrGraph::FromEdgeList(out.graph)).triangles;
  return out;
}

// ---------------------------------------------------------------- TRIEST

TEST(TriestTest, ExactWhenSampleHoldsEverything) {
  const TestGraph tg = MakeTestGraph(301);
  for (TriestVariant variant :
       {TriestVariant::kBase, TriestVariant::kImproved}) {
    Triest triest(tg.stream.size() + 10, 1, variant);
    for (const Edge& e : tg.stream) triest.Process(e);
    EXPECT_DOUBLE_EQ(triest.TriangleEstimate(), tg.triangles);
  }
}

TEST(TriestTest, SampleSizeBounded) {
  const TestGraph tg = MakeTestGraph(302);
  Triest triest(100, 2, TriestVariant::kBase);
  for (const Edge& e : tg.stream) {
    triest.Process(e);
    EXPECT_LE(triest.sample_size(), 100u);
  }
  EXPECT_EQ(triest.sample_size(), 100u);
}

TEST(TriestTest, BaseUnbiased) {
  const TestGraph tg = MakeTestGraph(303);
  OnlineStats est;
  const int trials = 300;
  for (int trial = 0; trial < trials; ++trial) {
    Triest triest(tg.stream.size() / 3, 500 + trial, TriestVariant::kBase);
    for (const Edge& e : tg.stream) triest.Process(e);
    est.Add(triest.TriangleEstimate());
  }
  EXPECT_NEAR(est.Mean(), tg.triangles,
              std::max(4.0 * est.StdError(), 0.03 * tg.triangles));
}

TEST(TriestTest, ImprovedUnbiasedAndLowerVariance) {
  const TestGraph tg = MakeTestGraph(304);
  OnlineStats base, impr;
  const int trials = 300;
  for (int trial = 0; trial < trials; ++trial) {
    Triest tb(tg.stream.size() / 3, 900 + trial, TriestVariant::kBase);
    Triest ti(tg.stream.size() / 3, 900 + trial, TriestVariant::kImproved);
    for (const Edge& e : tg.stream) {
      tb.Process(e);
      ti.Process(e);
    }
    base.Add(tb.TriangleEstimate());
    impr.Add(ti.TriangleEstimate());
  }
  EXPECT_NEAR(impr.Mean(), tg.triangles,
              std::max(4.0 * impr.StdError(), 0.03 * tg.triangles));
  EXPECT_LT(impr.SampleVariance(), base.SampleVariance());
}

TEST(TriestTest, IgnoresDuplicatesAndLoops) {
  Triest triest(10, 1, TriestVariant::kBase);
  triest.Process(MakeEdge(0, 1));
  triest.Process(MakeEdge(1, 0));
  triest.Process(Edge{2, 2});
  EXPECT_EQ(triest.edges_processed(), 1u);
  EXPECT_EQ(triest.sample_size(), 1u);
}

// ---------------------------------------------------------------- MASCOT

TEST(MascotTest, ExactAtProbabilityOne) {
  const TestGraph tg = MakeTestGraph(305);
  Mascot mascot(1.0, 1, MascotVariant::kImproved);
  for (const Edge& e : tg.stream) mascot.Process(e);
  EXPECT_DOUBLE_EQ(mascot.TriangleEstimate(), tg.triangles);
  EXPECT_EQ(mascot.sample_size(), tg.stream.size());
}

TEST(MascotTest, ImprovedUnbiased) {
  const TestGraph tg = MakeTestGraph(306);
  OnlineStats est;
  const int trials = 300;
  for (int trial = 0; trial < trials; ++trial) {
    Mascot mascot(0.3, 1300 + trial, MascotVariant::kImproved);
    for (const Edge& e : tg.stream) mascot.Process(e);
    est.Add(mascot.TriangleEstimate());
  }
  EXPECT_NEAR(est.Mean(), tg.triangles,
              std::max(4.0 * est.StdError(), 0.03 * tg.triangles));
}

TEST(MascotTest, BasicUnbiasedWithHigherVariance) {
  const TestGraph tg = MakeTestGraph(307);
  OnlineStats impr, basic;
  const int trials = 400;
  for (int trial = 0; trial < trials; ++trial) {
    Mascot mi(0.3, 1700 + trial, MascotVariant::kImproved);
    Mascot mb(0.3, 1700 + trial, MascotVariant::kBasic);
    for (const Edge& e : tg.stream) {
      mi.Process(e);
      mb.Process(e);
    }
    impr.Add(mi.TriangleEstimate());
    basic.Add(mb.TriangleEstimate());
  }
  EXPECT_NEAR(basic.Mean(), tg.triangles,
              std::max(4.0 * basic.StdError(), 0.05 * tg.triangles));
  EXPECT_LT(impr.SampleVariance(), basic.SampleVariance());
}

TEST(MascotTest, SampleSizeNearExpectation) {
  const TestGraph tg = MakeTestGraph(308);
  const double p = 0.2;
  Mascot mascot(p, 9, MascotVariant::kImproved);
  for (const Edge& e : tg.stream) mascot.Process(e);
  const double expected = p * static_cast<double>(tg.stream.size());
  EXPECT_NEAR(static_cast<double>(mascot.sample_size()), expected,
              4.0 * std::sqrt(expected));
}

// ----------------------------------------------------------------- NSAMP

TEST(NsampTest, DetectsTheOnlyTriangle) {
  // Stream: a triangle arriving in order. With many estimators the mean
  // estimate must be close to 1.
  OnlineStats est;
  for (int trial = 0; trial < 200; ++trial) {
    NeighborhoodSampler nsamp(64, 2000 + trial);
    nsamp.Process(MakeEdge(0, 1));
    nsamp.Process(MakeEdge(1, 2));
    nsamp.Process(MakeEdge(0, 2));
    est.Add(nsamp.TriangleEstimate());
  }
  EXPECT_NEAR(est.Mean(), 1.0, 4.0 * est.StdError() + 0.05);
}

TEST(NsampTest, ZeroOnTriangleFreeStream) {
  NeighborhoodSampler nsamp(128, 5);
  // Star graph: wedges but no triangles.
  for (NodeId i = 1; i <= 50; ++i) nsamp.Process(MakeEdge(0, i));
  EXPECT_EQ(nsamp.TriangleEstimate(), 0.0);
}

TEST(NsampTest, UnbiasedOnRealStream) {
  const TestGraph tg = MakeTestGraph(309);
  OnlineStats est;
  const int trials = 120;
  for (int trial = 0; trial < trials; ++trial) {
    NeighborhoodSampler nsamp(512, 2600 + trial);
    for (const Edge& e : tg.stream) nsamp.Process(e);
    est.Add(nsamp.TriangleEstimate());
  }
  // NSAMP has high variance; accept a generous band around truth.
  EXPECT_NEAR(est.Mean(), tg.triangles,
              std::max(4.0 * est.StdError(), 0.10 * tg.triangles));
}

TEST(NsampTest, EstimatorCountPreserved) {
  NeighborhoodSampler nsamp(37, 4);
  EXPECT_EQ(nsamp.num_estimators(), 37u);
  nsamp.Process(MakeEdge(0, 1));
  EXPECT_EQ(nsamp.edges_processed(), 1u);
}

// -------------------------------------- harness accuracy (ER and BA)

/// ER and BA accuracy fixtures shared by the MASCOT/TRIEST harness
/// suites, mirroring the generator families the GPS estimators and the
/// JSP/NSAMP suites are gated on.
struct GeneratorGraph {
  std::vector<Edge> stream;
  ExactCounts exact;
};

GeneratorGraph MakeGeneratorGraph(const std::string& family) {
  EdgeList graph = family == "ba"
                       ? GenerateBarabasiAlbert(250, 6, 0.5, 351).value()
                       : GenerateErdosRenyi(220, 2600, 353).value();
  GeneratorGraph out;
  out.stream = MakePermutedStream(graph, 352);
  out.exact = CountExact(CsrGraph::FromEdgeList(graph));
  return out;
}

class BaselineAccuracyTest : public ::testing::TestWithParam<const char*> {};

TEST_P(BaselineAccuracyTest, TriestAccurateOnGeneratorGraphs) {
  const GeneratorGraph g = MakeGeneratorGraph(GetParam());
  ASSERT_GT(g.exact.triangles, 0.0);
  const size_t budget = g.stream.size() / 3;

  const int trials = stat::StatTrials(150);
  stat::PointTrials base(g.exact.triangles);
  stat::PointTrials impr(g.exact.triangles);
  for (int trial = 0; trial < trials; ++trial) {
    Triest tb(budget, 4100 + trial, TriestVariant::kBase);
    Triest ti(budget, 4100 + trial, TriestVariant::kImproved);
    for (const Edge& e : g.stream) {
      tb.Process(e);
      ti.Process(e);
    }
    base.Add(tb.TriangleEstimate());
    impr.Add(ti.TriangleEstimate());
  }
  const std::string what = std::string("TRIEST ") + GetParam();
  base.ExpectMeanNearExact(what + " base", 4.0, 0.03);
  impr.ExpectMeanNearExact(what + " impr", 4.0, 0.03);
  impr.ExpectMeanRelErrorBelow(0.35, what + " impr");
  // TRIEST-IMPR's never-decrement counter dominates the base variant.
  EXPECT_LT(impr.values().SampleVariance(), base.values().SampleVariance())
      << what;
}

TEST_P(BaselineAccuracyTest, MascotAccurateOnGeneratorGraphs) {
  const GeneratorGraph g = MakeGeneratorGraph(GetParam());
  ASSERT_GT(g.exact.triangles, 0.0);

  const int trials = stat::StatTrials(150);
  stat::PointTrials basic(g.exact.triangles);
  stat::PointTrials impr(g.exact.triangles);
  for (int trial = 0; trial < trials; ++trial) {
    Mascot mb(0.3, 4700 + trial, MascotVariant::kBasic);
    Mascot mi(0.3, 4700 + trial, MascotVariant::kImproved);
    for (const Edge& e : g.stream) {
      mb.Process(e);
      mi.Process(e);
    }
    basic.Add(mb.TriangleEstimate());
    impr.Add(mi.TriangleEstimate());
  }
  const std::string what = std::string("MASCOT ") + GetParam();
  basic.ExpectMeanNearExact(what + " basic", 4.0, 0.05);
  impr.ExpectMeanNearExact(what + " impr", 4.0, 0.03);
  impr.ExpectMeanRelErrorBelow(0.35, what + " impr");
  // Unconditional counting removes the closing edge's randomness.
  EXPECT_LT(impr.values().SampleVariance(),
            basic.values().SampleVariance())
      << what;
}

INSTANTIATE_TEST_SUITE_P(Generators, BaselineAccuracyTest,
                         ::testing::Values("er", "ba"));

// ------------------------------------------------ Uniform reservoir

TEST(UniformReservoirTest, SizeBoundAndFill) {
  UniformReservoir res(50, 3);
  const TestGraph tg = MakeTestGraph(310);
  for (const Edge& e : tg.stream) {
    res.Process(e);
    EXPECT_LE(res.Sample().size(), 50u);
  }
  EXPECT_EQ(res.Sample().size(), 50u);
  EXPECT_EQ(res.edges_processed(), tg.stream.size());
}

TEST(UniformReservoirTest, InclusionUniformAcrossPositions) {
  // Each stream position must be retained with probability m/t; compare
  // early vs late positions over many runs.
  const size_t n = 400, m = 40;
  std::vector<int> kept(n, 0);
  const int trials = 2000;
  for (int trial = 0; trial < trials; ++trial) {
    UniformReservoir res(m, 5000 + trial);
    std::vector<Edge> stream;
    for (uint32_t i = 0; i < n; ++i) {
      stream.push_back(MakeEdge(i, i + 10000));  // distinct edges
    }
    for (const Edge& e : stream) res.Process(e);
    for (const Edge& e : res.Sample()) kept[e.u] += 1;
  }
  const double expected = static_cast<double>(m) / n * trials;  // 200
  for (size_t pos : {0ul, n / 2, n - 1}) {
    EXPECT_NEAR(kept[pos], expected, 5.0 * std::sqrt(expected))
        << "position " << pos;
  }
}

}  // namespace
}  // namespace gps
