// Randomized robustness tests ("fuzz-lite"): the text parser and the
// stream pipeline must never crash, leak invariants, or accept garbage on
// randomized malformed inputs.

#include <cmath>
#include <iterator>
#include <string>

#include <gtest/gtest.h>

#include "core/in_stream.h"
#include "graph/edge_list.h"
#include "util/random.h"

namespace gps {
namespace {

std::string RandomLine(Rng& rng) {
  static const char* kPieces[] = {
      "0",    "1",      "42",  "-7",   "4294967295", "99999999999999",
      "abc",  "1e5",    "#",   "%",    "",           " ",
      "\t",   "0x10",   ".",   "3 4",  "5 5",        "7 8 9",
      "a b",  "12 ",    " 34", "nan",  "inf",        "-0",
  };
  std::string line;
  const int tokens = 1 + static_cast<int>(rng.UniformU64(4));
  for (int i = 0; i < tokens; ++i) {
    if (i) line += ' ';
    line += kPieces[rng.UniformU64(std::size(kPieces))];
  }
  return line;
}

TEST(ParserFuzzTest, RandomTextNeverCrashesAndNeverAcceptsGarbageIds) {
  Rng rng(1234);
  for (int round = 0; round < 300; ++round) {
    std::string text;
    const int lines = 1 + static_cast<int>(rng.UniformU64(30));
    for (int i = 0; i < lines; ++i) {
      text += RandomLine(rng);
      text += '\n';
    }
    auto result = EdgeList::FromText(text);
    if (!result.ok()) continue;  // rejection is fine
    // If accepted, every edge must be in-range.
    for (const Edge& e : result->Edges()) {
      EXPECT_NE(e.u, kInvalidNode);
      EXPECT_NE(e.v, kInvalidNode);
      EXPECT_LT(e.u, result->NumNodes());
      EXPECT_LT(e.v, result->NumNodes());
    }
  }
}

TEST(ParserFuzzTest, ValidLinesAmongGarbageAreNotSilentlyDropped) {
  // A file is either parsed fully or rejected — valid prefixes must not
  // yield partial graphs.
  auto result = EdgeList::FromText("0 1\n1 2\ngarbage here\n2 3\n");
  EXPECT_FALSE(result.ok());
}

TEST(PipelineFuzzTest, RandomEdgeSoupKeepsEstimatorFinite) {
  // Random arrivals including loops, duplicates and boundary ids: the
  // estimator must keep all state finite and invariants intact.
  Rng rng(777);
  GpsSamplerOptions options;
  options.capacity = 64;
  options.seed = 5;
  InStreamEstimator est(options);
  for (int i = 0; i < 20000; ++i) {
    NodeId u = static_cast<NodeId>(rng.UniformU64(40));
    NodeId v = static_cast<NodeId>(rng.UniformU64(40));
    if (rng.Bernoulli(0.02)) u = kInvalidNode - 1;  // boundary ids
    if (rng.Bernoulli(0.05)) v = u;                 // self loops
    est.Process(Edge{u, v});
  }
  EXPECT_TRUE(est.reservoir().CheckInvariants());
  const GraphEstimates g = est.Estimates();
  for (double v : {g.triangles.value, g.triangles.variance, g.wedges.value,
                   g.wedges.variance, g.tri_wedge_cov,
                   g.ClusteringCoefficient().value}) {
    EXPECT_TRUE(std::isfinite(v));
  }
}

}  // namespace
}  // namespace gps
