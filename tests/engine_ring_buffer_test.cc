// SPSC ring buffer: FIFO semantics, capacity behavior, close/drain
// protocol, and a two-thread ordering stress.

#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/ring_buffer.h"

namespace gps {
namespace {

TEST(SpscRingBufferTest, FifoOrder) {
  SpscRingBuffer<int> ring(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(ring.TryPush(int(i)));
  int out = -1;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(ring.TryPop(&out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(ring.TryPop(&out));
}

TEST(SpscRingBufferTest, CapacityRoundsUpToPowerOfTwo) {
  SpscRingBuffer<int> ring(5);
  EXPECT_EQ(ring.capacity(), 8u);
  // Documented minimum: a requested capacity of 1 is a valid request but
  // yields the 2-slot floor (capacity 0 asserts — see ring_buffer.h).
  SpscRingBuffer<int> tiny(1);
  EXPECT_EQ(tiny.capacity(), 2u);
  SpscRingBuffer<int> two(2);
  EXPECT_EQ(two.capacity(), 2u);
}

TEST(SpscRingBufferTest, PushFailsWhenFullPopFailsWhenEmpty) {
  SpscRingBuffer<int> ring(2);
  EXPECT_TRUE(ring.TryPush(1));
  EXPECT_TRUE(ring.TryPush(2));
  EXPECT_FALSE(ring.TryPush(3));  // full
  int out = 0;
  EXPECT_TRUE(ring.TryPop(&out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(ring.TryPush(3));  // slot freed
  EXPECT_TRUE(ring.TryPop(&out));
  EXPECT_TRUE(ring.TryPop(&out));
  EXPECT_EQ(out, 3);
  EXPECT_FALSE(ring.TryPop(&out));
}

TEST(SpscRingBufferTest, CloseDrainsRemainingItems) {
  SpscRingBuffer<int> ring(4);
  EXPECT_TRUE(ring.TryPush(7));
  EXPECT_TRUE(ring.TryPush(8));
  ring.Close();
  EXPECT_TRUE(ring.closed());
  int out = 0;
  EXPECT_TRUE(ring.TryPop(&out));
  EXPECT_EQ(out, 7);
  EXPECT_TRUE(ring.TryPop(&out));
  EXPECT_EQ(out, 8);
  EXPECT_FALSE(ring.TryPop(&out));
}

TEST(SpscRingBufferTest, MoveOnlyPayload) {
  SpscRingBuffer<std::vector<int>> ring(2);
  std::vector<int> batch = {1, 2, 3};
  EXPECT_TRUE(ring.TryPush(std::move(batch)));
  std::vector<int> out;
  EXPECT_TRUE(ring.TryPop(&out));
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3}));
}

TEST(SpscRingBufferTest, TwoThreadOrderingStress) {
  constexpr uint64_t kItems = 200000;
  SpscRingBuffer<uint64_t> ring(64);
  std::thread producer([&] {
    for (uint64_t i = 0; i < kItems; ++i) {
      uint64_t item = i;
      while (!ring.TryPush(std::move(item))) std::this_thread::yield();
    }
    ring.Close();
  });
  uint64_t expected = 0;
  uint64_t out = 0;
  for (;;) {
    if (ring.TryPop(&out)) {
      ASSERT_EQ(out, expected);
      ++expected;
      continue;
    }
    if (ring.closed()) {
      if (!ring.TryPop(&out)) break;
      ASSERT_EQ(out, expected);
      ++expected;
      continue;
    }
    std::this_thread::yield();
  }
  producer.join();
  EXPECT_EQ(expected, kItems);
}

}  // namespace
}  // namespace gps
