// Tests for the exact counting oracles: known-answer graphs, per-edge
// counts, and a differential property test between the offline CSR counter
// and the incremental stream counter.

#include "graph/exact.h"

#include <numeric>

#include <gtest/gtest.h>

#include "gen/generators.h"
#include "graph/stream.h"
#include "util/random.h"

namespace gps {
namespace {

EdgeList Path(uint32_t n) {
  EdgeList list;
  for (uint32_t i = 0; i + 1 < n; ++i) list.Add(i, i + 1);
  return list;
}

EdgeList Cycle(uint32_t n) {
  EdgeList list = Path(n);
  list.Add(n - 1, 0);
  return list;
}

EdgeList Complete(uint32_t n) {
  EdgeList list;
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = i + 1; j < n; ++j) list.Add(i, j);
  }
  return list;
}

EdgeList Star(uint32_t leaves) {
  EdgeList list;
  for (uint32_t i = 1; i <= leaves; ++i) list.Add(0, i);
  return list;
}

EdgeList Petersen() {
  // Outer 5-cycle, inner pentagram, spokes. Famously triangle-free.
  EdgeList list;
  for (uint32_t i = 0; i < 5; ++i) {
    list.Add(i, (i + 1) % 5);          // outer cycle
    list.Add(5 + i, 5 + (i + 2) % 5);  // inner pentagram
    list.Add(i, 5 + i);                // spokes
  }
  return list;
}

TEST(CountExactTest, EmptyGraph) {
  ExactCounts c = CountExact(CsrGraph::FromEdgeList(EdgeList{}));
  EXPECT_EQ(c.triangles, 0.0);
  EXPECT_EQ(c.wedges, 0.0);
  EXPECT_EQ(c.ClusteringCoefficient(), 0.0);
}

TEST(CountExactTest, SingleTriangle) {
  ExactCounts c = CountExact(CsrGraph::FromEdgeList(Complete(3)));
  EXPECT_EQ(c.triangles, 1.0);
  EXPECT_EQ(c.wedges, 3.0);
  EXPECT_DOUBLE_EQ(c.ClusteringCoefficient(), 1.0);
}

TEST(CountExactTest, CompleteGraphs) {
  // K_n: C(n,3) triangles, n*C(n-1,2) wedges.
  for (uint32_t n : {4u, 5u, 6u, 10u}) {
    ExactCounts c = CountExact(CsrGraph::FromEdgeList(Complete(n)));
    const double expect_tri = n * (n - 1.0) * (n - 2.0) / 6.0;
    const double expect_wedge = n * (n - 1.0) * (n - 2.0) / 2.0;
    EXPECT_DOUBLE_EQ(c.triangles, expect_tri) << "K" << n;
    EXPECT_DOUBLE_EQ(c.wedges, expect_wedge) << "K" << n;
    EXPECT_DOUBLE_EQ(c.ClusteringCoefficient(), 1.0) << "K" << n;
  }
}

TEST(CountExactTest, PathAndCycle) {
  ExactCounts path = CountExact(CsrGraph::FromEdgeList(Path(10)));
  EXPECT_EQ(path.triangles, 0.0);
  EXPECT_EQ(path.wedges, 8.0);  // one wedge per interior node

  ExactCounts cyc = CountExact(CsrGraph::FromEdgeList(Cycle(10)));
  EXPECT_EQ(cyc.triangles, 0.0);
  EXPECT_EQ(cyc.wedges, 10.0);

  ExactCounts k3 = CountExact(CsrGraph::FromEdgeList(Cycle(3)));
  EXPECT_EQ(k3.triangles, 1.0);
}

TEST(CountExactTest, StarHasOnlyWedges) {
  const uint32_t leaves = 20;
  ExactCounts c = CountExact(CsrGraph::FromEdgeList(Star(leaves)));
  EXPECT_EQ(c.triangles, 0.0);
  EXPECT_EQ(c.wedges, leaves * (leaves - 1.0) / 2.0);
}

TEST(CountExactTest, PetersenGraphTriangleFree) {
  ExactCounts c = CountExact(CsrGraph::FromEdgeList(Petersen()));
  EXPECT_EQ(c.triangles, 0.0);
  // 3-regular on 10 nodes: 10 * C(3,2) = 30 wedges.
  EXPECT_EQ(c.wedges, 30.0);
}

TEST(CountExactTest, HigherMotifsOnKnownGraphs) {
  // K_n: C(n,4) 4-cliques; 3-paths = 3 * C(n,4) * ... easier by formula:
  // number of simple 3-edge paths in K_n is n!/(n-4)!/2 (ordered 4-tuples
  // up to reversal).
  for (uint32_t n : {4u, 5u, 6u, 8u}) {
    ExactCounts c = CountExact(CsrGraph::FromEdgeList(Complete(n)),
                               /*count_higher_motifs=*/true);
    const double expect_k4 =
        n * (n - 1.0) * (n - 2.0) * (n - 3.0) / 24.0;
    const double expect_p4 = n * (n - 1.0) * (n - 2.0) * (n - 3.0) / 2.0;
    // Each 4-node subset of K_n carries all 3 of its pairings as a C4
    // (chords allowed).
    const double expect_c4 = 3.0 * expect_k4;
    // C(n,5) 5-cliques; each of the C(n,3) triangles has 3(n-3) pendant
    // choices (every vertex offers its n-3 neighbors outside the
    // triangle).
    const double expect_k5 =
        n >= 5 ? n * (n - 1.0) * (n - 2.0) * (n - 3.0) * (n - 4.0) / 120.0
               : 0.0;
    const double expect_tailed =
        n * (n - 1.0) * (n - 2.0) / 6.0 * 3.0 * (n - 3.0);
    EXPECT_DOUBLE_EQ(c.four_cliques, expect_k4) << "K" << n;
    EXPECT_DOUBLE_EQ(c.three_paths, expect_p4) << "K" << n;
    EXPECT_DOUBLE_EQ(c.four_cycles, expect_c4) << "K" << n;
    EXPECT_DOUBLE_EQ(c.five_cliques, expect_k5) << "K" << n;
    EXPECT_DOUBLE_EQ(c.tailed_triangles, expect_tailed) << "K" << n;
  }

  // A path of 4 nodes holds exactly one 3-path and no 4-clique; a 4-cycle
  // holds four 3-paths; a triangle holds neither.
  ExactCounts p4 = CountExact(CsrGraph::FromEdgeList(Path(4)), true);
  EXPECT_DOUBLE_EQ(p4.four_cliques, 0.0);
  EXPECT_DOUBLE_EQ(p4.three_paths, 1.0);
  EXPECT_DOUBLE_EQ(p4.four_cycles, 0.0);
  ExactCounts c4 = CountExact(CsrGraph::FromEdgeList(Cycle(4)), true);
  EXPECT_DOUBLE_EQ(c4.four_cliques, 0.0);
  EXPECT_DOUBLE_EQ(c4.three_paths, 4.0);
  EXPECT_DOUBLE_EQ(c4.four_cycles, 1.0);
  ExactCounts k3 = CountExact(CsrGraph::FromEdgeList(Complete(3)), true);
  EXPECT_DOUBLE_EQ(k3.four_cliques, 0.0);
  EXPECT_DOUBLE_EQ(k3.three_paths, 0.0);
  EXPECT_DOUBLE_EQ(k3.four_cycles, 0.0);
  EXPECT_DOUBLE_EQ(k3.five_cliques, 0.0);
  EXPECT_DOUBLE_EQ(k3.tailed_triangles, 0.0);

  // A triangle with one pendant edge is exactly one tailed triangle.
  EdgeList paw = Complete(3);
  paw.Add(0, 3);
  ExactCounts tailed = CountExact(CsrGraph::FromEdgeList(paw), true);
  EXPECT_DOUBLE_EQ(tailed.tailed_triangles, 1.0);
  EXPECT_DOUBLE_EQ(tailed.five_cliques, 0.0);

  // Default (cheap) mode leaves the higher-order fields zero.
  ExactCounts cheap = CountExact(CsrGraph::FromEdgeList(Complete(6)));
  EXPECT_DOUBLE_EQ(cheap.four_cliques, 0.0);
  EXPECT_DOUBLE_EQ(cheap.three_paths, 0.0);
  EXPECT_DOUBLE_EQ(cheap.four_cycles, 0.0);
  EXPECT_DOUBLE_EQ(cheap.five_cliques, 0.0);
  EXPECT_DOUBLE_EQ(cheap.tailed_triangles, 0.0);
}

TEST(CountExactTest, HigherMotifsMatchBruteForce) {
  // Differential test against O(n^4)-ish brute force on random graphs.
  for (const uint64_t seed : {21u, 22u, 23u}) {
    EdgeList graph = GenerateErdosRenyi(40, 220, seed).value();
    const CsrGraph g = CsrGraph::FromEdgeList(graph);
    const ExactCounts c = CountExact(g, /*count_higher_motifs=*/true);

    double brute_k4 = 0;
    for (NodeId a = 0; a < g.NumNodes(); ++a) {
      for (NodeId b : g.Neighbors(a)) {
        if (b <= a) continue;
        for (NodeId x : g.Neighbors(a)) {
          if (x <= b || !g.HasEdge(b, x)) continue;
          for (NodeId y : g.Neighbors(a)) {
            if (y <= x || !g.HasEdge(b, y) || !g.HasEdge(x, y)) continue;
            brute_k4 += 1;
          }
        }
      }
    }
    // Independent 3-path oracle: ordered quadruples a-b-c-d of distinct
    // nodes joined by edges ab, bc, cd; each path enumerated twice (once
    // per direction).
    double brute_p4 = 0;
    for (NodeId a = 0; a < g.NumNodes(); ++a) {
      for (NodeId b : g.Neighbors(a)) {
        for (NodeId x : g.Neighbors(b)) {
          if (x == a) continue;
          for (NodeId d : g.Neighbors(x)) {
            if (d == a || d == b) continue;
            brute_p4 += 1;
          }
        }
      }
    }
    brute_p4 /= 2.0;

    // Independent 4-cycle oracle: closed walks a-b-x-d-a on 4 distinct
    // nodes; each C4 is traversed 8 times (4 starting points x 2
    // directions).
    double brute_c4 = 0;
    for (NodeId a = 0; a < g.NumNodes(); ++a) {
      for (NodeId b : g.Neighbors(a)) {
        for (NodeId x : g.Neighbors(b)) {
          if (x == a) continue;
          for (NodeId d : g.Neighbors(x)) {
            if (d == a || d == b) continue;
            if (g.HasEdge(d, a)) brute_c4 += 1;
          }
        }
      }
    }
    brute_c4 /= 8.0;

    // Independent 5-clique oracle: extend each brute-forced 4-clique
    // {a,b,x,y} with a fifth node adjacent to all four.
    double brute_k5 = 0;
    for (NodeId a = 0; a < g.NumNodes(); ++a) {
      for (NodeId b : g.Neighbors(a)) {
        if (b <= a) continue;
        for (NodeId x : g.Neighbors(a)) {
          if (x <= b || !g.HasEdge(b, x)) continue;
          for (NodeId y : g.Neighbors(a)) {
            if (y <= x || !g.HasEdge(b, y) || !g.HasEdge(x, y)) continue;
            for (NodeId z : g.Neighbors(a)) {
              if (z <= y || !g.HasEdge(b, z) || !g.HasEdge(x, z) ||
                  !g.HasEdge(y, z)) {
                continue;
              }
              brute_k5 += 1;
            }
          }
        }
      }
    }

    // Independent tailed-triangle oracle: every triangle paired with each
    // pendant edge at one of its vertices.
    double brute_tailed = 0;
    for (NodeId a = 0; a < g.NumNodes(); ++a) {
      for (NodeId b : g.Neighbors(a)) {
        if (b <= a) continue;
        for (NodeId x : g.Neighbors(a)) {
          if (x <= b || !g.HasEdge(b, x)) continue;
          brute_tailed += g.Degree(a) + g.Degree(b) + g.Degree(x) - 6.0;
        }
      }
    }

    EXPECT_DOUBLE_EQ(c.four_cliques, brute_k4) << "seed " << seed;
    EXPECT_DOUBLE_EQ(c.three_paths, brute_p4) << "seed " << seed;
    EXPECT_DOUBLE_EQ(c.four_cycles, brute_c4) << "seed " << seed;
    EXPECT_DOUBLE_EQ(c.five_cliques, brute_k5) << "seed " << seed;
    EXPECT_DOUBLE_EQ(c.tailed_triangles, brute_tailed) << "seed " << seed;
  }
}

TEST(CountTrianglesPerEdgeTest, CompleteGraph) {
  // In K5 every edge participates in n-2 = 3 triangles.
  auto counts = CountTrianglesPerEdge(CsrGraph::FromEdgeList(Complete(5)));
  EXPECT_EQ(counts.size(), 10u);
  for (uint32_t c : counts) EXPECT_EQ(c, 3u);
}

TEST(CountTrianglesPerEdgeTest, SumIsThreeTimesTriangleCount) {
  auto graph = GenerateErdosRenyi(60, 300, 5).value();
  CsrGraph g = CsrGraph::FromEdgeList(graph);
  auto counts = CountTrianglesPerEdge(g);
  const uint64_t sum = std::accumulate(counts.begin(), counts.end(), 0ull);
  EXPECT_EQ(static_cast<double>(sum), 3.0 * CountExact(g).triangles);
}

TEST(ExactStreamCounterTest, MatchesStaticOnTriangle) {
  ExactStreamCounter counter;
  EXPECT_TRUE(counter.AddEdge(MakeEdge(0, 1)));
  EXPECT_TRUE(counter.AddEdge(MakeEdge(1, 2)));
  EXPECT_EQ(counter.Counts().triangles, 0.0);
  EXPECT_EQ(counter.Counts().wedges, 1.0);
  EXPECT_TRUE(counter.AddEdge(MakeEdge(0, 2)));
  EXPECT_EQ(counter.Counts().triangles, 1.0);
  EXPECT_EQ(counter.Counts().wedges, 3.0);
}

TEST(ExactStreamCounterTest, RejectsDuplicatesAndLoops) {
  ExactStreamCounter counter;
  EXPECT_TRUE(counter.AddEdge(MakeEdge(0, 1)));
  EXPECT_FALSE(counter.AddEdge(MakeEdge(1, 0)));
  EXPECT_FALSE(counter.AddEdge(Edge{2, 2}));
  EXPECT_EQ(counter.NumEdges(), 1u);
  EXPECT_EQ(counter.Counts().wedges, 0.0);
}

TEST(ExactStreamCounterTest, ResetClearsState) {
  ExactStreamCounter counter;
  counter.AddEdge(MakeEdge(0, 1));
  counter.Reset();
  EXPECT_EQ(counter.NumEdges(), 0u);
  EXPECT_EQ(counter.Counts().wedges, 0.0);
  EXPECT_TRUE(counter.AddEdge(MakeEdge(0, 1)));
}

// Property: the incremental counter over any prefix permutation matches the
// offline counter on the prefix graph, for every graph family.
class IncrementalMatchesStaticTest
    : public ::testing::TestWithParam<int> {};

TEST_P(IncrementalMatchesStaticTest, PrefixCountsAgree) {
  const int family = GetParam();
  EdgeList graph;
  switch (family) {
    case 0:
      graph = GenerateErdosRenyi(80, 400, 11).value();
      break;
    case 1:
      graph = GenerateBarabasiAlbert(100, 4, 0.4, 12).value();
      break;
    case 2:
      graph = GenerateWattsStrogatz(100, 6, 0.2, 13).value();
      break;
    case 3:
      graph = GenerateGrid(10, 12, 0.3, 14).value();
      break;
    default:
      graph = GenerateChungLu(100, 350, 2.2, 15).value();
  }
  const std::vector<Edge> stream = MakePermutedStream(graph, 99);
  ExactStreamCounter counter;
  EdgeList prefix;
  for (size_t i = 0; i < stream.size(); ++i) {
    counter.AddEdge(stream[i]);
    prefix.Add(stream[i]);
    // Check a handful of prefixes to keep runtime modest.
    if ((i + 1) % std::max<size_t>(1, stream.size() / 7) == 0 ||
        i + 1 == stream.size()) {
      ExactCounts offline = CountExact(CsrGraph::FromEdgeList(prefix));
      ASSERT_DOUBLE_EQ(counter.Counts().triangles, offline.triangles)
          << "family " << family << " prefix " << i + 1;
      ASSERT_DOUBLE_EQ(counter.Counts().wedges, offline.wedges);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, IncrementalMatchesStaticTest,
                         ::testing::Range(0, 5));

}  // namespace
}  // namespace gps
