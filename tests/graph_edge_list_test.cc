// Tests for EdgeList: canonicalization, simplification, text I/O and
// failure injection on malformed input.

#include "graph/edge_list.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "graph/types.h"

namespace gps {
namespace {

TEST(EdgeTypesTest, CanonicalOrdersEndpoints) {
  EXPECT_EQ(MakeEdge(5, 2), (Edge{2, 5}));
  EXPECT_EQ(MakeEdge(2, 5), (Edge{2, 5}));
  EXPECT_TRUE((Edge{3, 3}).IsSelfLoop());
  EXPECT_FALSE((Edge{3, 4}).IsSelfLoop());
}

TEST(EdgeTypesTest, EdgeKeyRoundTrip) {
  const Edge e = MakeEdge(123456, 789);
  EXPECT_EQ(EdgeFromKey(EdgeKey(e)), e);
  // Key is orientation-independent.
  EXPECT_EQ(EdgeKey(Edge{789, 123456}), EdgeKey(Edge{123456, 789}));
}

TEST(EdgeTypesTest, EdgeKeysAreDistinct) {
  EXPECT_NE(EdgeKey(MakeEdge(1, 2)), EdgeKey(MakeEdge(1, 3)));
  EXPECT_NE(EdgeKey(MakeEdge(1, 2)), EdgeKey(MakeEdge(2, 3)));
}

TEST(EdgeListTest, AddTracksNodeBound) {
  EdgeList list;
  EXPECT_EQ(list.NumNodes(), 0u);
  list.Add(3, 7);
  EXPECT_EQ(list.NumNodes(), 8u);
  list.Add(10, 2);
  EXPECT_EQ(list.NumNodes(), 11u);
  EXPECT_EQ(list.NumEdges(), 2u);
}

TEST(EdgeListTest, SimplifyRemovesLoopsAndDuplicates) {
  EdgeList list;
  list.Add(1, 2);
  list.Add(2, 1);  // duplicate (reversed)
  list.Add(1, 2);  // duplicate
  list.Add(3, 3);  // self loop
  list.Add(2, 3);
  const size_t removed = list.Simplify();
  EXPECT_EQ(removed, 3u);
  EXPECT_EQ(list.NumEdges(), 2u);
  for (const Edge& e : list.Edges()) EXPECT_LT(e.u, e.v);
}

TEST(EdgeListTest, SimplifyIdempotent) {
  EdgeList list;
  list.Add(1, 2);
  list.Add(4, 3);
  list.Simplify();
  EXPECT_EQ(list.Simplify(), 0u);
}

TEST(EdgeListTest, CountTouchedNodes) {
  EdgeList list;
  list.Add(0, 5);
  list.Add(5, 9);
  EXPECT_EQ(list.CountTouchedNodes(), 3u);
  EXPECT_EQ(list.NumNodes(), 10u);  // id bound, not touched count
}

TEST(EdgeListTest, ClearResets) {
  EdgeList list;
  list.Add(1, 2);
  list.Clear();
  EXPECT_EQ(list.NumEdges(), 0u);
  EXPECT_EQ(list.NumNodes(), 0u);
}

TEST(EdgeListTest, FromTextParsesEdgesAndComments) {
  auto result = EdgeList::FromText(
      "# comment line\n"
      "% matrix-market comment\n"
      "0 1\n"
      "  2   3  \n"
      "\n"
      "4\t5\n");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->NumEdges(), 3u);
  EXPECT_EQ(result->Edges()[0], MakeEdge(0, 1));
  EXPECT_EQ(result->Edges()[1], MakeEdge(2, 3));
  EXPECT_EQ(result->Edges()[2], MakeEdge(4, 5));
}

TEST(EdgeListTest, FromTextToleratesCrlfAndMissingFinalNewline) {
  auto result = EdgeList::FromText("0 1\r\n2 3\r\n4 5");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->NumEdges(), 3u);
  EXPECT_EQ(result->Edges()[1], MakeEdge(2, 3));
  EXPECT_EQ(result->Edges()[2], MakeEdge(4, 5));
}

// ---- Strictness matrix: anything after the two ids is a refusal ----------

TEST(EdgeListTest, FromTextRejectsTrailingJunk) {
  auto result = EdgeList::FromText("0 1\n1 2 garbage\n");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("trailing junk"),
            std::string::npos);
  EXPECT_NE(result.status().message().find("line 2"), std::string::npos);
  EXPECT_NE(result.status().message().find("'1 2 garbage'"),
            std::string::npos);
}

TEST(EdgeListTest, FromTextRejectsWeightColumn) {
  // A weighted edge list fed to the unweighted parser used to silently
  // drop the weights; now it is a named refusal.
  auto result = EdgeList::FromText("1 2 0.5\n");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("trailing junk"),
            std::string::npos);
}

TEST(EdgeListTest, FromTextRejectsThirdNodeId) {
  auto result = EdgeList::FromText("7 8 9\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("trailing junk"),
            std::string::npos);
}

TEST(EdgeListTest, FromTextRejectsCommentAfterEdge) {
  auto result = EdgeList::FromText("1 2 # inline comment\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("trailing junk"),
            std::string::npos);
}

TEST(EdgeListTest, FromTextRejectsJunkFusedToId) {
  // "12abc" must not parse as 12: after the digits the parser requires
  // blank or end of line.
  auto result = EdgeList::FromText("12abc 3\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("malformed edge"),
            std::string::npos);
}

TEST(EdgeListTest, FromTextAcceptsTrailingBlanksOnly) {
  auto result = EdgeList::FromText("1 2 \t \n");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->NumEdges(), 1u);
}

TEST(EdgeListTest, FromTextTruncatesEchoedLineTo80Chars) {
  // A pathological multi-kilobyte line must not balloon the error text:
  // the echo is capped at 80 characters plus "...".
  const std::string junk(5000, 'x');
  auto result = EdgeList::FromText("1 2 " + junk + "\n");
  ASSERT_FALSE(result.ok());
  const std::string& message = result.status().message();
  EXPECT_LT(message.size(), 200u);
  EXPECT_NE(message.find("..."), std::string::npos);
  EXPECT_NE(message.find("trailing junk"), std::string::npos);
}

TEST(EdgeListTest, LoadAndFromTextReportIdenticalErrors) {
  // Load parses the mmap'd bytes with the same parser as FromText; the
  // error strings (message, line number, echo) must match exactly.
  const std::string text = "0 1\n# ok\n5 6 junk here\n";
  const std::string path =
      testing::TempDir() + "/gps_edge_list_err_test.txt";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
  }
  auto from_text = EdgeList::FromText(text);
  auto from_load = EdgeList::Load(path);
  ASSERT_FALSE(from_text.ok());
  ASSERT_FALSE(from_load.ok());
  EXPECT_EQ(from_text.status().code(), from_load.status().code());
  EXPECT_EQ(from_text.status().message(), from_load.status().message());
  std::remove(path.c_str());
}

TEST(EdgeListTest, LoadRejectsDirectoryByName) {
  auto result = EdgeList::Load(testing::TempDir());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("is a directory"),
            std::string::npos);
}

TEST(EdgeListTest, FromTextRejectsMalformedLine) {
  auto result = EdgeList::FromText("0 1\nnot numbers\n");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("line 2"), std::string::npos);
}

TEST(EdgeListTest, FromTextRejectsMissingEndpoint) {
  auto result = EdgeList::FromText("7\n");
  ASSERT_FALSE(result.ok());
}

TEST(EdgeListTest, FromTextRejectsNegativeIds) {
  auto result = EdgeList::FromText("-1 4\n");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
}

TEST(EdgeListTest, FromTextRejectsOverflowingIds) {
  auto result = EdgeList::FromText("4294967295 1\n");  // == kInvalidNode
  ASSERT_FALSE(result.ok());
}

TEST(EdgeListTest, SaveLoadRoundTrip) {
  EdgeList list;
  list.Add(0, 1);
  list.Add(1, 2);
  list.Add(0, 2);
  const std::string path = testing::TempDir() + "/gps_edge_list_test.txt";
  ASSERT_TRUE(list.Save(path).ok());
  auto loaded = EdgeList::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->NumEdges(), 3u);
  EXPECT_EQ(loaded->Edges()[0], list.Edges()[0]);
  std::remove(path.c_str());
}

TEST(EdgeListTest, LoadMissingFileFails) {
  auto result = EdgeList::Load("/nonexistent/path/graph.txt");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace gps
