// Differential test: GpsReservoir against a brute-force reference model of
// priority sampling.
//
// The reference model materializes every arrival's priority r(k) = w/u
// explicitly (drawing u through an identically seeded RNG, in the same
// order), keeps the top-m by priority, and computes z* as the maximum
// priority ever outside the top-m. Any divergence in the incremental
// heap/threshold logic — off-by-one eviction, wrong tie handling, stale
// threshold — shows up as a set or threshold mismatch.

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "core/reservoir.h"
#include "gen/generators.h"
#include "graph/stream.h"
#include "util/flat_hash_map.h"
#include "util/random.h"

namespace gps {
namespace {

struct ReferenceArrival {
  Edge edge;
  double priority;
};

/// Brute-force reference: recompute the exact sample from scratch after
/// every arrival.
class ReferencePrioritySampler {
 public:
  ReferencePrioritySampler(size_t capacity, uint64_t seed)
      : capacity_(capacity), rng_(seed) {}

  void Process(const Edge& raw, double weight) {
    const Edge e = raw.Canonical();
    if (e.IsSelfLoop()) return;
    // Duplicate semantics must match GpsReservoir: an arrival already in
    // the *current sample* is ignored WITHOUT consuming randomness.
    if (CurrentSampleContains(e)) return;
    const double u = rng_.UniformOpenClosed01();
    arrivals_.push_back({e, weight / u});
    Recompute();
  }

  double threshold() const { return z_star_; }

  std::vector<uint64_t> SampleKeys() const {
    std::vector<uint64_t> keys;
    for (const ReferenceArrival& a : sample_) keys.push_back(EdgeKey(a.edge));
    std::sort(keys.begin(), keys.end());
    return keys;
  }

 private:
  bool CurrentSampleContains(const Edge& e) const {
    for (const ReferenceArrival& a : sample_) {
      if (a.edge == e) return true;
    }
    return false;
  }

  void Recompute() {
    // The incremental process is history-dependent (evicted edges may
    // rearrive), so the reference maintains the candidate set the same
    // way: all arrivals not currently sampled are gone for good unless
    // they rearrive, which re-enters them as new arrivals. Hence the
    // candidate set for the top-m is simply the current sample plus the
    // newest arrival.
    sample_.push_back(arrivals_.back());
    if (sample_.size() > capacity_) {
      auto min_it =
          std::min_element(sample_.begin(), sample_.end(),
                           [](const ReferenceArrival& a,
                              const ReferenceArrival& b) {
                             return a.priority < b.priority;
                           });
      z_star_ = std::max(z_star_, min_it->priority);
      sample_.erase(min_it);
    }
  }

  size_t capacity_;
  Rng rng_;
  std::vector<ReferenceArrival> arrivals_;
  std::vector<ReferenceArrival> sample_;
  double z_star_ = 0.0;
};

class ReferenceModelTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ReferenceModelTest, SampleSetAndThresholdMatchExactly) {
  const size_t capacity = GetParam();
  EdgeList graph = GenerateErdosRenyi(120, 700, 41).value();
  const std::vector<Edge> stream = MakePermutedStream(graph, 42);

  GpsReservoir reservoir(GpsOptions{capacity, 4242});
  ReferencePrioritySampler reference(capacity, 4242);

  Rng weight_rng(7);
  for (size_t i = 0; i < stream.size(); ++i) {
    const double weight = 0.25 + 4.0 * weight_rng.Uniform01();
    // Both consume the weight identically; priorities are generated from
    // identically seeded internal RNGs in the same order.
    reservoir.Process(stream[i], weight);
    reference.Process(stream[i], weight);

    ASSERT_DOUBLE_EQ(reservoir.threshold(), reference.threshold())
        << "arrival " << i;
    if (i % 25 == 0 || i + 1 == stream.size()) {
      std::vector<uint64_t> ours;
      reservoir.ForEachEdge(
          [&](SlotId, const GpsReservoir::EdgeRecord& rec) {
            ours.push_back(EdgeKey(rec.edge));
          });
      std::sort(ours.begin(), ours.end());
      ASSERT_EQ(ours, reference.SampleKeys()) << "arrival " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Capacities, ReferenceModelTest,
                         ::testing::Values(1, 2, 7, 32, 100, 400, 1000));

TEST(ReferenceModelTest, RearrivalOfEvictedEdgeIsANewArrival) {
  // An edge evicted earlier that arrives again must be treated as a fresh
  // arrival (new priority draw) by both models.
  const size_t capacity = 2;
  GpsReservoir reservoir(GpsOptions{capacity, 99});
  ReferencePrioritySampler reference(capacity, 99);
  const Edge edges[] = {MakeEdge(0, 1), MakeEdge(2, 3), MakeEdge(4, 5),
                        MakeEdge(0, 1), MakeEdge(2, 3), MakeEdge(4, 5),
                        MakeEdge(0, 1)};
  for (const Edge& e : edges) {
    reservoir.Process(e, 1.0);
    reference.Process(e, 1.0);
    ASSERT_DOUBLE_EQ(reservoir.threshold(), reference.threshold());
  }
  std::vector<uint64_t> ours;
  reservoir.ForEachEdge([&](SlotId, const GpsReservoir::EdgeRecord& rec) {
    ours.push_back(EdgeKey(rec.edge));
  });
  std::sort(ours.begin(), ours.end());
  EXPECT_EQ(ours, reference.SampleKeys());
}

}  // namespace
}  // namespace gps
