// Tests for the generic in-stream snapshot framework (paper Section 5.1):
// built-in enumerators, agreement with the specialized estimator, and
// statistical unbiasedness for a motif (4-cliques) the specialized
// estimators do not cover.

#include "core/snapshot.h"

#include <vector>

#include <gtest/gtest.h>

#include "core/in_stream.h"
#include "gen/generators.h"
#include "graph/csr_graph.h"
#include "graph/exact.h"
#include "graph/stream.h"
#include "util/welford.h"

namespace gps {
namespace {

double CountFourCliquesExact(const CsrGraph& g) {
  double count = 0;
  for (NodeId a = 0; a < g.NumNodes(); ++a) {
    for (NodeId b : g.Neighbors(a)) {
      if (b <= a) continue;
      for (NodeId c : g.Neighbors(a)) {
        if (c <= b || !g.HasEdge(b, c)) continue;
        for (NodeId d : g.Neighbors(a)) {
          if (d <= c || !g.HasEdge(b, d) || !g.HasEdge(c, d)) continue;
          count += 1;
        }
      }
    }
  }
  return count;
}

TEST(InStreamMotifCounterTest, TriangleEnumeratorExactWithoutEviction) {
  EdgeList graph = GenerateErdosRenyi(60, 250, 501).value();
  const std::vector<Edge> stream = MakePermutedStream(graph, 502);
  const ExactCounts actual = CountExact(CsrGraph::FromEdgeList(graph));

  GpsSamplerOptions options;
  options.capacity = stream.size() + 4;
  options.seed = 503;
  InStreamMotifCounter counter(options, TriangleEnumerator());
  for (const Edge& e : stream) counter.Process(e);
  EXPECT_DOUBLE_EQ(counter.Count(), actual.triangles);
  EXPECT_DOUBLE_EQ(counter.VarianceLowerEstimate(), 0.0);
  EXPECT_EQ(counter.SnapshotsTaken(),
            static_cast<uint64_t>(actual.triangles));
}

TEST(InStreamMotifCounterTest, WedgeEnumeratorExactWithoutEviction) {
  EdgeList graph = GenerateWattsStrogatz(80, 6, 0.2, 511).value();
  const std::vector<Edge> stream = MakePermutedStream(graph, 512);
  const ExactCounts actual = CountExact(CsrGraph::FromEdgeList(graph));

  GpsSamplerOptions options;
  options.capacity = stream.size() + 4;
  options.seed = 513;
  InStreamMotifCounter counter(options, WedgeEnumerator());
  for (const Edge& e : stream) counter.Process(e);
  EXPECT_DOUBLE_EQ(counter.Count(), actual.wedges);
}

TEST(InStreamMotifCounterTest, MatchesSpecializedTriangleEstimator) {
  // Identical options/seed: the generic counter's triangle count must
  // exactly equal the specialized Algorithm-3 estimator's count.
  EdgeList graph = GenerateBarabasiAlbert(150, 5, 0.5, 521).value();
  const std::vector<Edge> stream = MakePermutedStream(graph, 522);

  GpsSamplerOptions options;
  options.capacity = stream.size() / 4;
  options.seed = 523;
  InStreamMotifCounter generic(options, TriangleEnumerator());
  InStreamEstimator specialized(options);
  for (const Edge& e : stream) {
    generic.Process(e);
    specialized.Process(e);
  }
  EXPECT_DOUBLE_EQ(generic.Count(),
                   specialized.Estimates().triangles.value);
  // The generic variance estimate omits nonnegative covariances, so it is
  // at most the specialized one (which includes them).
  EXPECT_LE(generic.VarianceLowerEstimate(),
            specialized.Estimates().triangles.variance + 1e-9);
}

TEST(InStreamMotifCounterTest, FourCliqueExactWithoutEviction) {
  EdgeList graph = GenerateBarabasiAlbert(60, 8, 0.7, 531).value();
  const std::vector<Edge> stream = MakePermutedStream(graph, 532);
  const double actual =
      CountFourCliquesExact(CsrGraph::FromEdgeList(graph));
  ASSERT_GT(actual, 0.0);

  GpsSamplerOptions options;
  options.capacity = stream.size() + 4;
  options.seed = 533;
  InStreamMotifCounter counter(options, FourCliqueEnumerator());
  for (const Edge& e : stream) counter.Process(e);
  EXPECT_DOUBLE_EQ(counter.Count(), actual);
}

TEST(InStreamMotifCounterTest, FourCliqueUnbiasedUnderEviction) {
  EdgeList graph = GenerateBarabasiAlbert(80, 8, 0.6, 541).value();
  const double actual =
      CountFourCliquesExact(CsrGraph::FromEdgeList(graph));
  ASSERT_GT(actual, 5.0);
  const std::vector<Edge> stream = MakePermutedStream(graph, 542);

  OnlineStats est;
  const int trials = 400;
  for (int trial = 0; trial < trials; ++trial) {
    GpsSamplerOptions options;
    options.capacity = stream.size() / 2;
    options.seed = 14000 + trial;
    InStreamMotifCounter counter(options, FourCliqueEnumerator());
    for (const Edge& e : stream) counter.Process(e);
    est.Add(counter.Count());
  }
  EXPECT_NEAR(est.Mean(), actual,
              std::max(4.0 * est.StdError(), 0.05 * actual));
}

// Exact count of simple 3-edge paths: Σ_{(u,v)∈E} (d(u)-1)(d(v)-1) - 3T.
double CountThreePathsExact(const CsrGraph& g) {
  double sum = 0;
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    for (NodeId v : g.Neighbors(u)) {
      if (v <= u) continue;
      sum += (g.Degree(u) - 1.0) * (g.Degree(v) - 1.0);
    }
  }
  return sum - 3.0 * CountExact(g).triangles;
}

TEST(InStreamMotifCounterTest, ThreePathExactWithoutEviction) {
  EdgeList graph = GenerateErdosRenyi(50, 160, 551).value();
  const std::vector<Edge> stream = MakePermutedStream(graph, 552);
  const double actual =
      CountThreePathsExact(CsrGraph::FromEdgeList(graph));
  ASSERT_GT(actual, 0.0);

  GpsSamplerOptions options;
  options.capacity = stream.size() + 4;
  options.seed = 553;
  InStreamMotifCounter counter(options, ThreePathEnumerator());
  for (const Edge& e : stream) counter.Process(e);
  EXPECT_DOUBLE_EQ(counter.Count(), actual);
}

TEST(InStreamMotifCounterTest, ThreePathKnownSmallGraphs) {
  // A path of 4 nodes contains exactly one 3-path; a triangle none; a
  // 4-cycle four.
  auto count_paths = [](const std::vector<Edge>& stream) {
    GpsSamplerOptions options;
    options.capacity = 32;
    options.seed = 1;
    InStreamMotifCounter counter(options, ThreePathEnumerator());
    for (const Edge& e : stream) counter.Process(e);
    return counter.Count();
  };
  EXPECT_DOUBLE_EQ(
      count_paths({MakeEdge(0, 1), MakeEdge(1, 2), MakeEdge(2, 3)}), 1.0);
  EXPECT_DOUBLE_EQ(
      count_paths({MakeEdge(0, 1), MakeEdge(1, 2), MakeEdge(0, 2)}), 0.0);
  EXPECT_DOUBLE_EQ(count_paths({MakeEdge(0, 1), MakeEdge(1, 2),
                                MakeEdge(2, 3), MakeEdge(0, 3)}),
                   4.0);
}

TEST(InStreamMotifCounterTest, ThreePathUnbiasedUnderEviction) {
  EdgeList graph = GenerateBarabasiAlbert(80, 4, 0.3, 561).value();
  const double actual =
      CountThreePathsExact(CsrGraph::FromEdgeList(graph));
  ASSERT_GT(actual, 100.0);
  const std::vector<Edge> stream = MakePermutedStream(graph, 562);

  OnlineStats est;
  const int trials = 300;
  for (int trial = 0; trial < trials; ++trial) {
    GpsSamplerOptions options;
    options.capacity = stream.size() / 2;
    options.seed = 25000 + trial;
    InStreamMotifCounter counter(options, ThreePathEnumerator());
    for (const Edge& e : stream) counter.Process(e);
    est.Add(counter.Count());
  }
  EXPECT_NEAR(est.Mean(), actual,
              std::max(4.0 * est.StdError(), 0.03 * actual));
}

TEST(InStreamMotifCounterTest, CustomEnumeratorAndMissingEdgeIgnored) {
  // An enumerator that reports an unsampled edge: the emitter must ignore
  // that instance (contributes 0) rather than crash or miscount.
  GpsSamplerOptions options;
  options.capacity = 10;
  options.seed = 1;
  InStreamMotifCounter counter(
      options, [](const Edge&, const SampledGraph&,
                  const InStreamMotifCounter::Emitter& emit) {
        const Edge bogus[1] = {MakeEdge(1000, 1001)};
        emit(bogus);
      });
  counter.Process(MakeEdge(0, 1));
  counter.Process(MakeEdge(1, 2));
  EXPECT_DOUBLE_EQ(counter.Count(), 0.0);
  EXPECT_EQ(counter.SnapshotsTaken(), 0u);
}

TEST(InStreamMotifCounterTest, SkipsLoopsAndDuplicates) {
  GpsSamplerOptions options;
  options.capacity = 10;
  options.seed = 1;
  InStreamMotifCounter counter(options, WedgeEnumerator());
  counter.Process(MakeEdge(0, 1));
  counter.Process(MakeEdge(0, 1));
  counter.Process(Edge{1, 1});
  counter.Process(MakeEdge(1, 2));
  EXPECT_DOUBLE_EQ(counter.Count(), 1.0);
  EXPECT_EQ(counter.reservoir().size(), 2u);
}

}  // namespace
}  // namespace gps
