// Tests for the synthetic graph generators: parameter validation,
// determinism, structural properties per family, and common invariants
// (parameterized across generators).

#include "gen/generators.h"

#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "graph/csr_graph.h"
#include "graph/exact.h"

namespace gps {
namespace {

TEST(ErdosRenyiTest, ExactEdgeCount) {
  auto g = GenerateErdosRenyi(1000, 5000, 1);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumEdges(), 5000u);
  EXPECT_LE(g->NumNodes(), 1000u);
}

TEST(ErdosRenyiTest, RejectsBadParameters) {
  EXPECT_FALSE(GenerateErdosRenyi(1, 10, 1).ok());
  EXPECT_FALSE(GenerateErdosRenyi(10, 100, 1).ok());  // > C(10,2)/2 density
}

TEST(ErdosRenyiTest, LowClustering) {
  auto g = GenerateErdosRenyi(2000, 10000, 2);
  ASSERT_TRUE(g.ok());
  const ExactCounts c = CountExact(CsrGraph::FromEdgeList(*g));
  // ER expected clustering = p ~ 2m/n^2 = 0.005; allow generous slack.
  EXPECT_LT(c.ClusteringCoefficient(), 0.03);
}

TEST(BarabasiAlbertTest, EdgeCountApproximation) {
  auto g = GenerateBarabasiAlbert(1000, 5, 0.0, 3);
  ASSERT_TRUE(g.ok());
  // Seed clique C(6,2)=15 plus ~5 per remaining node (duplicate retries may
  // drop a few).
  const size_t expected = 15 + (1000 - 6) * 5;
  EXPECT_NEAR(static_cast<double>(g->NumEdges()),
              static_cast<double>(expected), expected * 0.02);
}

TEST(BarabasiAlbertTest, RejectsBadParameters) {
  EXPECT_FALSE(GenerateBarabasiAlbert(5, 0, 0.0, 1).ok());
  EXPECT_FALSE(GenerateBarabasiAlbert(5, 5, 0.0, 1).ok());
  EXPECT_FALSE(GenerateBarabasiAlbert(100, 3, 1.5, 1).ok());
}

TEST(BarabasiAlbertTest, HeavyTailPresent) {
  auto g = GenerateBarabasiAlbert(5000, 4, 0.0, 4);
  ASSERT_TRUE(g.ok());
  CsrGraph csr = CsrGraph::FromEdgeList(*g);
  // Preferential attachment: max degree far exceeds the mean (~8).
  EXPECT_GT(csr.MaxDegree(), 60u);
}

TEST(BarabasiAlbertTest, TriadFormationRaisesClustering) {
  auto plain = GenerateBarabasiAlbert(3000, 4, 0.0, 5);
  auto triad = GenerateBarabasiAlbert(3000, 4, 0.8, 5);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(triad.ok());
  const double cc_plain =
      CountExact(CsrGraph::FromEdgeList(*plain)).ClusteringCoefficient();
  const double cc_triad =
      CountExact(CsrGraph::FromEdgeList(*triad)).ClusteringCoefficient();
  EXPECT_GT(cc_triad, 2.0 * cc_plain);
}

TEST(WattsStrogatzTest, RingLatticeAtBetaZero) {
  auto g = GenerateWattsStrogatz(100, 4, 0.0, 6);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumEdges(), 200u);  // n * k/2
  CsrGraph csr = CsrGraph::FromEdgeList(*g);
  for (NodeId v = 0; v < 100; ++v) EXPECT_EQ(csr.Degree(v), 4u);
  // Ring lattice with k=4: each node's (i,i+1,i+2) closes a triangle;
  // n triangles total, clustering 0.5.
  const ExactCounts c = CountExact(csr);
  EXPECT_EQ(c.triangles, 100.0);
  EXPECT_DOUBLE_EQ(c.ClusteringCoefficient(), 0.5);
}

TEST(WattsStrogatzTest, RewiringPreservesEdgeCountApproximately) {
  auto g = GenerateWattsStrogatz(1000, 6, 0.3, 7);
  ASSERT_TRUE(g.ok());
  // Rewiring keeps the edge unless no non-duplicate target is found.
  EXPECT_NEAR(static_cast<double>(g->NumEdges()), 3000.0, 30.0);
}

TEST(WattsStrogatzTest, RejectsBadParameters) {
  EXPECT_FALSE(GenerateWattsStrogatz(100, 3, 0.1, 1).ok());  // odd k
  EXPECT_FALSE(GenerateWattsStrogatz(100, 0, 0.1, 1).ok());
  EXPECT_FALSE(GenerateWattsStrogatz(5, 6, 0.1, 1).ok());   // n <= k+1
  EXPECT_FALSE(GenerateWattsStrogatz(100, 4, 1.5, 1).ok());
}

TEST(ChungLuTest, EdgeCountAndTail) {
  auto g = GenerateChungLu(5000, 20000, 2.1, 8);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumEdges(), 20000u);
  CsrGraph csr = CsrGraph::FromEdgeList(*g);
  // gamma=2.1 is very heavy-tailed: hub degree >> mean degree 8.
  EXPECT_GT(csr.MaxDegree(), 100u);
}

TEST(ChungLuTest, HigherGammaThinnerTail) {
  auto heavy = GenerateChungLu(5000, 15000, 2.0, 9);
  auto light = GenerateChungLu(5000, 15000, 3.5, 9);
  ASSERT_TRUE(heavy.ok());
  ASSERT_TRUE(light.ok());
  EXPECT_GT(CsrGraph::FromEdgeList(*heavy).MaxDegree(),
            CsrGraph::FromEdgeList(*light).MaxDegree());
}

TEST(ChungLuTest, RejectsBadParameters) {
  EXPECT_FALSE(GenerateChungLu(1, 10, 2.0, 1).ok());
  EXPECT_FALSE(GenerateChungLu(100, 10, 1.0, 1).ok());
  EXPECT_FALSE(GenerateChungLu(10, 100000, 2.0, 1).ok());
}

TEST(RandomGeometricTest, SpatialClustering) {
  auto g = GenerateRandomGeometric(3000, 0.03, 10);
  ASSERT_TRUE(g.ok());
  EXPECT_GT(g->NumEdges(), 1000u);
  const ExactCounts c = CountExact(CsrGraph::FromEdgeList(*g));
  // Unit-disk graphs have clustering around 0.5-0.6.
  EXPECT_GT(c.ClusteringCoefficient(), 0.3);
}

TEST(RandomGeometricTest, RejectsBadParameters) {
  EXPECT_FALSE(GenerateRandomGeometric(1, 0.1, 1).ok());
  EXPECT_FALSE(GenerateRandomGeometric(100, 0.0, 1).ok());
  EXPECT_FALSE(GenerateRandomGeometric(100, 1.0, 1).ok());
}

TEST(GridTest, LatticeEdgeCount) {
  auto g = GenerateGrid(10, 20, 0.0, 11);
  ASSERT_TRUE(g.ok());
  // rows*(cols-1) horizontal + (rows-1)*cols vertical.
  EXPECT_EQ(g->NumEdges(), 10u * 19 + 9u * 20);
  // Pure lattice is triangle-free and bipartite.
  EXPECT_EQ(CountExact(CsrGraph::FromEdgeList(*g)).triangles, 0.0);
}

TEST(GridTest, DiagonalsCreateTriangles) {
  auto g = GenerateGrid(30, 30, 0.2, 12);
  ASSERT_TRUE(g.ok());
  const ExactCounts c = CountExact(CsrGraph::FromEdgeList(*g));
  // ~29*29*0.2 diagonals, two triangles each.
  EXPECT_GT(c.triangles, 100.0);
  // Road regime: sparse triangles relative to wedges.
  EXPECT_LT(c.ClusteringCoefficient(), 0.25);
}

TEST(GridTest, RejectsBadParameters) {
  EXPECT_FALSE(GenerateGrid(1, 10, 0.0, 1).ok());
  EXPECT_FALSE(GenerateGrid(10, 10, -0.1, 1).ok());
}

TEST(KroneckerTest, EdgeCountAndSkew) {
  auto g = GenerateKronecker(12, 15000, 0.9, 0.55, 0.55, 0.15, 13);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumEdges(), 15000u);
  EXPECT_LE(g->NumNodes(), 1u << 12);
  CsrGraph csr = CsrGraph::FromEdgeList(*g);
  EXPECT_GT(csr.MaxDegree(), 80u);  // skewed seed matrix -> hubs
}

TEST(KroneckerTest, RejectsBadParameters) {
  EXPECT_FALSE(GenerateKronecker(0, 10, 0.9, 0.5, 0.5, 0.1, 1).ok());
  EXPECT_FALSE(GenerateKronecker(40, 10, 0.9, 0.5, 0.5, 0.1, 1).ok());
  EXPECT_FALSE(GenerateKronecker(10, 10, -1.0, 0.5, 0.5, 0.1, 1).ok());
  EXPECT_FALSE(GenerateKronecker(10, 10, 0.0, 0.0, 0.0, 0.0, 1).ok());
  EXPECT_FALSE(GenerateKronecker(3, 100, 0.9, 0.5, 0.5, 0.1, 1).ok());
}

// Common invariants across every generator, parameterized.
using NamedGenerator =
    std::pair<const char*, std::function<Result<EdgeList>(uint64_t seed)>>;

class GeneratorInvariantsTest
    : public ::testing::TestWithParam<NamedGenerator> {};

TEST_P(GeneratorInvariantsTest, ProducesSimpleGraph) {
  auto g = GetParam().second(123);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_GT(g->NumEdges(), 0u);
  // Already simplified: canonical, no loops, no duplicates.
  EdgeList copy = *g;
  EXPECT_EQ(copy.Simplify(), 0u);
  for (const Edge& e : g->Edges()) {
    EXPECT_LT(e.u, e.v);
    EXPECT_LT(e.v, g->NumNodes());
  }
}

TEST_P(GeneratorInvariantsTest, DeterministicPerSeed) {
  auto a = GetParam().second(55);
  auto b = GetParam().second(55);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->NumEdges(), b->NumEdges());
  for (size_t i = 0; i < a->NumEdges(); ++i) {
    ASSERT_EQ(a->Edges()[i], b->Edges()[i]);
  }
}

TEST_P(GeneratorInvariantsTest, SeedsChangeOutput) {
  auto a = GetParam().second(55);
  auto b = GetParam().second(56);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  bool any_difference = a->NumEdges() != b->NumEdges();
  if (!any_difference) {
    for (size_t i = 0; i < a->NumEdges(); ++i) {
      if (!(a->Edges()[i] == b->Edges()[i])) {
        any_difference = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_difference);
}

INSTANTIATE_TEST_SUITE_P(
    AllGenerators, GeneratorInvariantsTest,
    ::testing::Values(
        NamedGenerator{"erdos_renyi",
                       [](uint64_t s) {
                         return GenerateErdosRenyi(500, 2000, s);
                       }},
        NamedGenerator{"barabasi_albert",
                       [](uint64_t s) {
                         return GenerateBarabasiAlbert(500, 4, 0.3, s);
                       }},
        NamedGenerator{"watts_strogatz",
                       [](uint64_t s) {
                         return GenerateWattsStrogatz(500, 6, 0.2, s);
                       }},
        NamedGenerator{"chung_lu",
                       [](uint64_t s) {
                         return GenerateChungLu(500, 1500, 2.3, s);
                       }},
        NamedGenerator{"random_geometric",
                       [](uint64_t s) {
                         return GenerateRandomGeometric(800, 0.05, s);
                       }},
        NamedGenerator{"grid",
                       [](uint64_t s) {
                         return GenerateGrid(20, 25, 0.2, s);
                       }},
        NamedGenerator{"kronecker",
                       [](uint64_t s) {
                         return GenerateKronecker(10, 3000, 0.9, 0.55, 0.55,
                                                  0.15, s);
                       }}),
    [](const ::testing::TestParamInfo<NamedGenerator>& info) {
      return info.param.first;
    });

}  // namespace
}  // namespace gps
