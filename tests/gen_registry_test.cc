// Tests for the paper-analog corpus registry.

#include "gen/registry.h"

#include <set>

#include <gtest/gtest.h>

#include "graph/csr_graph.h"
#include "graph/exact.h"

namespace gps {
namespace {

constexpr double kTestScale = 0.02;  // keep registry tests fast

TEST(RegistryTest, EntriesAreNamedAndUnique) {
  const auto& entries = CorpusEntries();
  EXPECT_GE(entries.size(), 12u);
  std::set<std::string> names;
  for (const CorpusEntry& e : entries) {
    EXPECT_FALSE(e.name.empty());
    EXPECT_FALSE(e.family.empty());
    EXPECT_FALSE(e.analog_of.empty());
    EXPECT_TRUE(names.insert(e.name).second) << "duplicate " << e.name;
    EXPECT_TRUE(IsCorpusGraph(e.name));
  }
}

TEST(RegistryTest, UnknownNameFails) {
  EXPECT_FALSE(IsCorpusGraph("no-such-graph"));
  auto r = MakeCorpusGraph("no-such-graph", 0.1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(RegistryTest, RejectsBadScale) {
  EXPECT_FALSE(MakeCorpusGraph("soc-orkut-sim", 0.0).ok());
  EXPECT_FALSE(MakeCorpusGraph("soc-orkut-sim", 1.5).ok());
  EXPECT_FALSE(MakeCorpusGraph("soc-orkut-sim", -1.0).ok());
}

TEST(RegistryTest, EveryEntryGeneratesAtSmallScale) {
  for (const CorpusEntry& entry : CorpusEntries()) {
    auto g = MakeCorpusGraph(entry.name, kTestScale);
    ASSERT_TRUE(g.ok()) << entry.name << ": " << g.status().ToString();
    EXPECT_GT(g->NumEdges(), 100u) << entry.name;
    EdgeList copy = *g;
    EXPECT_EQ(copy.Simplify(), 0u) << entry.name << " not simplified";
  }
}

TEST(RegistryTest, GenerationIsDeterministic) {
  auto a = MakeCorpusGraph("higgs-social-sim", kTestScale);
  auto b = MakeCorpusGraph("higgs-social-sim", kTestScale);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->NumEdges(), b->NumEdges());
  for (size_t i = 0; i < a->NumEdges(); ++i) {
    ASSERT_EQ(a->Edges()[i], b->Edges()[i]);
  }
}

TEST(RegistryTest, FamilyRegimesRoughlyHold) {
  // Collaboration analog: high clustering. Road analog: low clustering.
  // Social follower analog: heavy tail with low clustering. These checks
  // pin the qualitative regimes the substitution argument relies on.
  auto collab = MakeCorpusGraph("ca-hollywood-sim", 0.05);
  ASSERT_TRUE(collab.ok());
  const double cc_collab =
      CountExact(CsrGraph::FromEdgeList(*collab)).ClusteringCoefficient();
  EXPECT_GT(cc_collab, 0.2);

  auto road = MakeCorpusGraph("infra-road-sim", 0.05);
  ASSERT_TRUE(road.ok());
  const ExactCounts road_counts =
      CountExact(CsrGraph::FromEdgeList(*road));
  EXPECT_GT(road_counts.triangles, 0.0);  // some triangles exist...
  EXPECT_LT(road_counts.ClusteringCoefficient(), 0.1);  // ...but few

  auto social = MakeCorpusGraph("soc-twitter-sim", 0.05);
  ASSERT_TRUE(social.ok());
  CsrGraph social_csr = CsrGraph::FromEdgeList(*social);
  EXPECT_GT(social_csr.MaxDegree(), 20u * 2 * social_csr.NumEdges() /
                                        std::max<size_t>(
                                            1, social_csr.NumNodes()));
  EXPECT_LT(CountExact(social_csr).ClusteringCoefficient(), 0.2);
}

}  // namespace
}  // namespace gps
