// Deterministic work-stealing scheduler contracts (engine/shard.h).
//
// The load-bearing property: with batch-substream semantics, WHO processes
// a batch is invisible — StealMode::kActive (thieves fire) produces
// byte-identical shard reservoirs, sub-stratum tables, merged estimates,
// motif statistics, and checkpoint manifests to StealMode::kArmed (no
// thief ever fires) on the same substream assignment, for any thread
// scheduling and ring capacity. K=1 bypasses the scheduler entirely and
// keeps the serial byte-identity contract with stealing enabled.
//
// The stress suite runs under TSan in CI (ci.yml / scripts/check.sh): the
// steal hand-off (mutex-guarded batch queue + completion map, SPSC rings,
// release/acquire drain handshake) is exactly the code a data race would
// corrupt silently.

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/in_stream.h"
#include "engine/merge.h"
#include "engine/sharded_engine.h"
#include "engine_test_util.h"
#include "gen/generators.h"
#include "graph/csr_graph.h"
#include "graph/exact.h"
#include "graph/stream.h"

namespace gps {
namespace {

using engine_test::ExpectExactlyEqual;
using engine_test::FreshDir;
using engine_test::ManifestPath;
using engine_test::ReservoirBytes;

std::vector<Edge> TestStream(uint32_t nodes, uint32_t edges_per_node,
                             uint64_t graph_seed, uint64_t stream_seed) {
  EdgeList graph =
      GenerateBarabasiAlbert(nodes, edges_per_node, 0.6, graph_seed).value();
  return MakePermutedStream(graph, stream_seed);
}

ShardedEngineOptions StealOptions(uint32_t shards, size_t capacity,
                                  uint64_t seed, StealMode steal,
                                  size_t batch_size = 64,
                                  double skew = 1.2) {
  ShardedEngineOptions options;
  options.sampler.capacity = capacity;
  options.sampler.seed = seed;
  options.num_shards = shards;
  options.batch_size = batch_size;
  options.steal = steal;
  options.shard_skew = skew;
  return options;
}

struct EngineState {
  std::vector<std::string> reservoirs;
  std::vector<std::vector<uint32_t>> strata;
  GraphEstimates merged;
  std::vector<MotifEstimate> motifs;
  double edge_count = 0.0;
  uint64_t steals = 0;
};

EngineState RunEngine(const std::vector<Edge>& stream,
                      ShardedEngineOptions options) {
  ShardedEngine engine(options);
  for (const Edge& e : stream) engine.Process(e);
  engine.Finish();
  EngineState state;
  for (uint32_t s = 0; s < engine.num_shards(); ++s) {
    state.reservoirs.push_back(ReservoirBytes(engine.shard(s).reservoir()));
    const auto strata = engine.shard(s).slot_strata();
    state.strata.emplace_back(strata.begin(), strata.end());
  }
  state.merged = engine.MergedEstimates();
  state.motifs = engine.MergedMotifEstimates();
  state.edge_count = engine.MergedEdgeCountEstimate();
  state.steals = engine.StealsPerformed();
  return state;
}

void ExpectSameState(const EngineState& a, const EngineState& b,
                     const std::string& what) {
  ASSERT_EQ(a.reservoirs.size(), b.reservoirs.size()) << what;
  for (size_t s = 0; s < a.reservoirs.size(); ++s) {
    EXPECT_EQ(a.reservoirs[s], b.reservoirs[s]) << what << " shard " << s;
    EXPECT_EQ(a.strata[s], b.strata[s]) << what << " shard " << s;
  }
  ExpectExactlyEqual(a.merged, b.merged);
  ASSERT_EQ(a.motifs.size(), b.motifs.size()) << what;
  for (size_t m = 0; m < a.motifs.size(); ++m) {
    EXPECT_EQ(a.motifs[m].name, b.motifs[m].name) << what;
    EXPECT_EQ(a.motifs[m].estimate.value, b.motifs[m].estimate.value)
        << what << " motif " << a.motifs[m].name;
    EXPECT_EQ(a.motifs[m].estimate.variance, b.motifs[m].estimate.variance)
        << what << " motif " << a.motifs[m].name;
    EXPECT_EQ(a.motifs[m].snapshots, b.motifs[m].snapshots) << what;
  }
  EXPECT_EQ(a.edge_count, b.edge_count) << what;
}

// --- Determinism: stealing fired vs. not fired ----------------------------

class StealIdentityTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(StealIdentityTest, ActiveByteIdenticalToArmedAcrossSchedules) {
  const uint32_t k = GetParam();
  const std::vector<Edge> stream = TestStream(1500, 6, 301, 302);
  ShardedEngineOptions armed =
      StealOptions(k, 1800, 303, StealMode::kArmed);
  armed.motifs = {"tri", "4clique"};

  const EngineState reference = RunEngine(stream, armed);
  EXPECT_EQ(reference.steals, 0u);

  // kActive with several ring capacities: thread interleavings and steal
  // patterns differ per run, results must not. The batch size is pinned —
  // in steal mode it defines the substream boundaries and IS part of the
  // sample path.
  for (const size_t ring_capacity : {size_t{2}, size_t{64}}) {
    ShardedEngineOptions active = armed;
    active.steal = StealMode::kActive;
    active.ring_capacity = ring_capacity;
    const EngineState got = RunEngine(stream, active);
    ExpectSameState(reference, got,
                    "K=" + std::to_string(k) + " ring=" +
                        std::to_string(ring_capacity));
  }
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, StealIdentityTest,
                         ::testing::Values(2u, 4u, 8u));

TEST(StealSchedulerTest, StealingActuallyFiresUnderSkew) {
  // Hub-heavy + skewed routing: shard 0 receives the bulk of the stream,
  // so idle peers must find stealable batches. (The determinism suite
  // above makes the count irrelevant for results; this guards against the
  // scheduler silently never stealing.)
  const std::vector<Edge> stream = TestStream(2000, 6, 311, 312);
  ShardedEngineOptions options =
      StealOptions(4, 2000, 313, StealMode::kActive, /*batch_size=*/32,
                   /*skew=*/2.0);
  const EngineState state = RunEngine(stream, options);
  EXPECT_GT(state.steals, 0u);
}

TEST(StealSchedulerTest, SingleShardBypassKeepsSerialByteIdentity) {
  // K=1 has no peers: the scheduler is bypassed and the serial sample
  // path replays byte for byte even with stealing enabled.
  const std::vector<Edge> stream = TestStream(1200, 6, 321, 322);
  GpsSamplerOptions serial_options;
  serial_options.capacity = 900;
  serial_options.seed = 323;
  InStreamEstimator serial(serial_options);
  for (const Edge& e : stream) serial.Process(e);

  ShardedEngineOptions options =
      StealOptions(1, 900, 323, StealMode::kActive, /*batch_size=*/97,
                   /*skew=*/0.0);
  ShardedEngine engine(options);
  EXPECT_EQ(engine.effective_steal(), StealMode::kDisabled);
  for (const Edge& e : stream) engine.Process(e);
  engine.Finish();
  EXPECT_EQ(ReservoirBytes(engine.shard(0).reservoir()),
            ReservoirBytes(serial.reservoir()));
  EXPECT_TRUE(engine.shard(0).slot_strata().empty());
}

TEST(StealSchedulerTest, CheckpointsRefuseSkewedRouting) {
  // shard_skew is a bench knob manifests cannot record; a resume would
  // silently reroute uniformly, so checkpointing must refuse up front.
  const std::vector<Edge> stream = TestStream(400, 5, 361, 362);
  ShardedEngineOptions options =
      StealOptions(2, 300, 363, StealMode::kArmed, 64, /*skew=*/1.0);
  ShardedEngine engine(options);
  for (const Edge& e : stream) engine.Process(e);
  engine.Finish();
  const Status serialize =
      engine.SerializeShards(FreshDir("steal", "skewed").string());
  EXPECT_EQ(serialize.code(), StatusCode::kFailedPrecondition);
  ShardedEngine fresh(options);
  EXPECT_EQ(fresh.CheckpointEvery(10, "/tmp/unused").code(),
            StatusCode::kFailedPrecondition);
}

TEST(StealSchedulerTest, ManifestsByteIdenticalArmedVsActive) {
  // The acceptance contract end to end: checkpoint manifests and shard
  // files of a steal-on run equal the steal-off run's byte for byte.
  // Uniform routing: checkpoints refuse the skew bench knob.
  const std::vector<Edge> stream = TestStream(1000, 6, 331, 332);
  ShardedEngineOptions armed =
      StealOptions(4, 1200, 333, StealMode::kArmed, /*batch_size=*/64,
                   /*skew=*/0.0);
  armed.motifs = {"wedge", "3path"};
  ShardedEngineOptions active = armed;
  active.steal = StealMode::kActive;

  const auto checkpoint = [&stream](const ShardedEngineOptions& options,
                                    const std::filesystem::path& dir) {
    ShardedEngine engine(options);
    for (const Edge& e : stream) engine.Process(e);
    engine.Finish();
    ASSERT_TRUE(engine.SerializeShards(dir.string()).ok());
  };
  const std::filesystem::path dir_armed = FreshDir("steal", "armed");
  const std::filesystem::path dir_active = FreshDir("steal", "active");
  checkpoint(armed, dir_armed);
  checkpoint(active, dir_active);

  for (const auto& entry :
       std::filesystem::directory_iterator(dir_armed)) {
    const std::string name = entry.path().filename().string();
    std::ifstream a(entry.path(), std::ios::binary);
    std::ifstream b(dir_active / name, std::ios::binary);
    ASSERT_TRUE(a && b) << name;
    std::stringstream sa, sb;
    sa << a.rdbuf();
    sb << b.rdbuf();
    EXPECT_EQ(sa.str(), sb.str()) << name;
  }

  // The checkpoint set stays consumable by the standard merge path. (The
  // manifest does not carry batch sub-strata, so the checkpoint merge
  // stratifies at shard granularity — close to, but not bit-equal with,
  // the live steal-mode merge; see src/engine/README.md.)
  const auto merged = ShardedEngine::MergeFromCheckpoints(
      std::vector<std::string>{ManifestPath(dir_armed)});
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_GT(merged->wedges.value, 0.0);
}

// --- Accuracy sanity ------------------------------------------------------

TEST(StealSchedulerTest, BatchSubstreamEstimatesTrackExactCounts) {
  // The batch-substream decomposition (within-batch minis + cross-stratum
  // union pass) must remain a sound estimator, not just a deterministic
  // one. Single run, generous tolerance — the multi-trial statistical
  // gates stay with the default scheduler (engine_sharded_test).
  EdgeList graph = GenerateBarabasiAlbert(2500, 8, 0.6, 341).value();
  const std::vector<Edge> stream = MakePermutedStream(graph, 342);
  const ExactCounts exact = CountExact(CsrGraph::FromEdgeList(graph));

  ShardedEngineOptions options = StealOptions(
      4, stream.size() / 2, 343, StealMode::kActive, /*batch_size=*/256);
  const EngineState state = RunEngine(stream, options);
  EXPECT_NEAR(state.merged.triangles.value, exact.triangles,
              0.40 * exact.triangles);
  EXPECT_NEAR(state.merged.wedges.value, exact.wedges,
              0.15 * exact.wedges);
  EXPECT_GT(state.merged.triangles.variance, 0.0);
  EXPECT_GT(state.merged.wedges.variance, 0.0);
}

// --- TSan hand-off stress -------------------------------------------------

TEST(StealSchedulerTest, HandoffStressStaysDeterministic) {
  // Tiny batches + deep skew + repeated rounds: maximal steal traffic
  // through the queue/completion-map hand-off. Every round must reproduce
  // round 0 exactly; under TSan this doubles as the data-race probe for
  // the steal protocol.
  const std::vector<Edge> stream = TestStream(900, 6, 351, 352);
  ShardedEngineOptions options =
      StealOptions(4, 700, 353, StealMode::kActive, /*batch_size=*/8,
                   /*skew=*/2.0);
  options.ring_capacity = 2;

  EngineState reference;
  constexpr int kRounds = 8;
  for (int round = 0; round < kRounds; ++round) {
    EngineState state = RunEngine(stream, options);
    if (round == 0) {
      reference = std::move(state);
      continue;
    }
    ExpectSameState(reference, state, "round " + std::to_string(round));
  }
}

}  // namespace
}  // namespace gps
