// Tests for the strict numeric parsers (util/parse_bytes.h): the shared
// integer core behind --capacity/--shards-style flags, the byte-size
// literal behind --mem, and the exact re-parseable formatter used by
// allocation reports.

#include "util/parse_bytes.h"

#include <cstdint>
#include <limits>
#include <string>

#include <gtest/gtest.h>

namespace gps {
namespace {

TEST(ParseStrictUint64Test, AcceptsPlainIntegers) {
  for (const auto& [text, value] :
       {std::pair<std::string, uint64_t>{"0", 0},
        {"1", 1},
        {"76508", 76508},
        {"18446744073709551615",
         std::numeric_limits<uint64_t>::max()}}) {
    auto parsed = ParseStrictUint64(text, "flag '--capacity'");
    ASSERT_TRUE(parsed.ok()) << text;
    EXPECT_EQ(*parsed, value) << text;
  }
}

TEST(ParseStrictUint64Test, RejectsEverythingNonCanonical) {
  // Strictness is the point: strtoull would silently accept most of
  // these (partial consumption, signs, whitespace) and size a reservoir
  // from garbage.
  for (const char* text : {"", " 1", "1 ", "+1", "-1", "0x10", "12k",
                           "1.5", "1e3", "12 34"}) {
    auto parsed = ParseStrictUint64(text, "flag '--capacity'");
    EXPECT_FALSE(parsed.ok()) << "\"" << text << "\"";
  }
  // Errors name the flag so CLI refusals read naturally.
  auto bad = ParseStrictUint64("abc", "flag '--capacity'");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("--capacity"), std::string::npos);
}

TEST(ParseStrictUint64Test, OverflowIsAnErrorNotAWrap) {
  auto over = ParseStrictUint64("18446744073709551616", "flag '--seed'");
  ASSERT_FALSE(over.ok());
  EXPECT_NE(over.status().message().find("overflow"), std::string::npos)
      << over.status().ToString();
}

TEST(ParseByteSizeTest, AcceptsSuffixedSizes) {
  for (const auto& [text, value] :
       {std::pair<std::string, uint64_t>{"4096", 4096},
        {"512K", 512ull * 1024},
        {"512k", 512ull * 1024},
        {"512M", 512ull * 1024 * 1024},
        {"2G", 2ull * 1024 * 1024 * 1024},
        {"1T", 1ull * 1024 * 1024 * 1024 * 1024}}) {
    auto parsed = ParseByteSize(text, "flag '--mem'");
    ASSERT_TRUE(parsed.ok()) << text << ": " << parsed.status().ToString();
    EXPECT_EQ(*parsed, value) << text;
  }
}

TEST(ParseByteSizeTest, RejectsZeroJunkAndOverflow) {
  // Zero budgets (plain or scaled) are meaningless, suffixes are exactly
  // one of K/M/G/T, and scaling must not wrap.
  for (const char* text :
       {"0", "0G", "", "M", "512MB", "2x", "1.5G", "-1G", "1 G",
        "17179869184G" /* 2^34 * 2^30 overflows */}) {
    EXPECT_FALSE(ParseByteSize(text, "flag '--mem'").ok())
        << "\"" << text << "\"";
  }
  auto junk = ParseByteSize("512MB", "flag '--mem'");
  EXPECT_NE(junk.status().message().find("--mem"), std::string::npos);
}

TEST(FormatByteSizeTest, ExactAndReParseable) {
  // The formatter picks the largest evenly-dividing suffix and never
  // rounds: parse(format(x)) == x for every x.
  EXPECT_EQ(FormatByteSize(512ull * 1024 * 1024), "512M");
  EXPECT_EQ(FormatByteSize(1536ull * 1024), "1536K");
  EXPECT_EQ(FormatByteSize(4096), "4K");
  EXPECT_EQ(FormatByteSize(4097), "4097");
  EXPECT_EQ(FormatByteSize(0), "0");
  for (const uint64_t bytes :
       {uint64_t{1}, uint64_t{4097}, uint64_t{512} * 1024 * 1024,
        uint64_t{3} * 1024 * 1024 * 1024, uint64_t{10485760}}) {
    const std::string text = FormatByteSize(bytes);
    auto round = ParseByteSize(text, "round-trip");
    ASSERT_TRUE(round.ok()) << text;
    EXPECT_EQ(*round, bytes) << text;
  }
}

}  // namespace
}  // namespace gps
