// Tests for the Bloom filter: no false negatives, false-positive rate near
// the configured target, sizing, and clearing.

#include "util/bloom.h"

#include <gtest/gtest.h>

#include "graph/types.h"
#include "util/random.h"

namespace gps {
namespace {

TEST(BloomFilterTest, NoFalseNegatives) {
  BloomFilter filter(10000, 0.01);
  Rng rng(1);
  std::vector<uint64_t> keys;
  for (int i = 0; i < 10000; ++i) keys.push_back(rng.NextU64());
  for (uint64_t k : keys) filter.Insert(k);
  for (uint64_t k : keys) EXPECT_TRUE(filter.MayContain(k));
}

TEST(BloomFilterTest, FalsePositiveRateNearTarget) {
  const double target = 0.01;
  BloomFilter filter(20000, target);
  Rng rng(2);
  for (int i = 0; i < 20000; ++i) {
    filter.Insert(rng.NextU64() | 1);  // odd keys inserted
  }
  int false_positives = 0;
  const int probes = 100000;
  for (int i = 0; i < probes; ++i) {
    if (filter.MayContain(rng.NextU64() & ~1ULL)) ++false_positives;  // even
  }
  const double fpr = static_cast<double>(false_positives) / probes;
  EXPECT_LT(fpr, 4.0 * target);
  EXPECT_NEAR(filter.EstimatedFpr(), fpr, 0.02);
}

TEST(BloomFilterTest, EmptyFilterContainsNothing) {
  BloomFilter filter(1000, 0.01);
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(filter.MayContain(rng.NextU64()));
  }
}

TEST(BloomFilterTest, ClearResetsMembership) {
  BloomFilter filter(100, 0.01);
  filter.Insert(42);
  ASSERT_TRUE(filter.MayContain(42));
  filter.Clear();
  EXPECT_FALSE(filter.MayContain(42));
  EXPECT_EQ(filter.ItemsInserted(), 0u);
}

TEST(BloomFilterTest, SizingScalesWithFpr) {
  BloomFilter loose(10000, 0.1);
  BloomFilter tight(10000, 0.001);
  EXPECT_GT(tight.SizeBits(), loose.SizeBits());
  EXPECT_GT(tight.NumHashes(), loose.NumHashes());
}

TEST(BloomFilterTest, ClampsDegenerateParameters) {
  BloomFilter filter(0, -1.0);  // clamped internally
  filter.Insert(7);
  EXPECT_TRUE(filter.MayContain(7));
  EXPECT_GE(filter.SizeBits(), 64u);
}

TEST(BloomFilterTest, WorksWithEdgeKeys) {
  // The intended use: membership over canonical edge keys.
  BloomFilter filter(5000, 0.01);
  for (NodeId i = 0; i < 5000; ++i) {
    filter.Insert(EdgeKey(MakeEdge(i, i + 1)));
  }
  for (NodeId i = 0; i < 5000; ++i) {
    EXPECT_TRUE(filter.MayContain(EdgeKey(MakeEdge(i + 1, i))));  // reversed
  }
}

}  // namespace
}  // namespace gps
