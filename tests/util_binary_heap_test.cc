// Tests for the binary min-heap, including a randomized differential test
// against std::priority_queue.

#include "util/binary_heap.h"

#include <functional>
#include <queue>
#include <vector>

#include <gtest/gtest.h>

#include "util/random.h"

namespace gps {
namespace {

TEST(BinaryMinHeapTest, EmptyHeap) {
  BinaryMinHeap<int> heap;
  EXPECT_TRUE(heap.empty());
  EXPECT_EQ(heap.size(), 0u);
  EXPECT_TRUE(heap.IsValidHeap());
}

TEST(BinaryMinHeapTest, SingleElement) {
  BinaryMinHeap<int> heap;
  heap.Push(42);
  EXPECT_EQ(heap.Top(), 42);
  EXPECT_EQ(heap.PopMin(), 42);
  EXPECT_TRUE(heap.empty());
}

TEST(BinaryMinHeapTest, OrderedExtraction) {
  BinaryMinHeap<int> heap;
  for (int x : {5, 3, 8, 1, 9, 2, 7}) heap.Push(x);
  std::vector<int> out;
  while (!heap.empty()) out.push_back(heap.PopMin());
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3, 5, 7, 8, 9}));
}

TEST(BinaryMinHeapTest, DuplicatesSupported) {
  BinaryMinHeap<int> heap;
  for (int x : {4, 4, 4, 1, 1}) heap.Push(x);
  EXPECT_EQ(heap.PopMin(), 1);
  EXPECT_EQ(heap.PopMin(), 1);
  EXPECT_EQ(heap.PopMin(), 4);
  EXPECT_EQ(heap.size(), 2u);
}

TEST(BinaryMinHeapTest, CustomComparatorMaxHeap) {
  BinaryMinHeap<int, std::greater<int>> heap;
  for (int x : {5, 3, 8, 1}) heap.Push(x);
  EXPECT_EQ(heap.PopMin(), 8);
  EXPECT_EQ(heap.PopMin(), 5);
}

TEST(BinaryMinHeapTest, StructWithComparator) {
  struct Item {
    double priority;
    int id;
  };
  struct Less {
    bool operator()(const Item& a, const Item& b) const {
      return a.priority < b.priority;
    }
  };
  BinaryMinHeap<Item, Less> heap;
  heap.Push({3.5, 1});
  heap.Push({1.5, 2});
  heap.Push({2.5, 3});
  EXPECT_EQ(heap.PopMin().id, 2);
  EXPECT_EQ(heap.PopMin().id, 3);
  EXPECT_EQ(heap.PopMin().id, 1);
}

TEST(BinaryMinHeapTest, InvariantMaintainedUnderRandomOps) {
  BinaryMinHeap<uint64_t> heap;
  Rng rng(17);
  for (int op = 0; op < 20000; ++op) {
    if (heap.empty() || rng.Bernoulli(0.6)) {
      heap.Push(rng.UniformU64(1000));
    } else {
      heap.PopMin();
    }
    if (op % 1000 == 0) {
      ASSERT_TRUE(heap.IsValidHeap());
    }
  }
  EXPECT_TRUE(heap.IsValidHeap());
}

TEST(BinaryMinHeapTest, DifferentialAgainstPriorityQueue) {
  BinaryMinHeap<uint64_t> ours;
  std::priority_queue<uint64_t, std::vector<uint64_t>,
                      std::greater<uint64_t>>
      ref;
  Rng rng(18);
  for (int op = 0; op < 50000; ++op) {
    if (ref.empty() || rng.Bernoulli(0.55)) {
      const uint64_t x = rng.NextU64();
      ours.Push(x);
      ref.push(x);
    } else {
      ASSERT_EQ(ours.PopMin(), ref.top());
      ref.pop();
    }
    ASSERT_EQ(ours.size(), ref.size());
    if (!ref.empty()) {
      ASSERT_EQ(ours.Top(), ref.top());
    }
  }
}

TEST(BinaryMinHeapTest, ClearAndReuse) {
  BinaryMinHeap<int> heap;
  for (int i = 0; i < 10; ++i) heap.Push(i);
  heap.clear();
  EXPECT_TRUE(heap.empty());
  heap.Push(5);
  EXPECT_EQ(heap.Top(), 5);
}

}  // namespace
}  // namespace gps
