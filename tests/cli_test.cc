// End-to-end tests for the gps_cli binary: every subcommand, checkpoint /
// resume round trips, and error paths. The binary path is injected by
// CMake via GPS_CLI_PATH.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#ifndef GPS_CLI_PATH
#define GPS_CLI_PATH "gps_cli"
#endif

namespace {

struct CommandResult {
  int exit_code = -1;
  std::string output;
};

/// Runs the CLI with `env_prefix` prepended (e.g. "GPS_INTERSECT_KERNEL=simd")
/// so tests can exercise environment-driven modes of a fresh process.
CommandResult RunCliEnv(const std::string& env_prefix,
                        const std::string& args) {
  const std::string command = (env_prefix.empty() ? "" : env_prefix + " ") +
                              std::string(GPS_CLI_PATH) + " " + args +
                              " 2>&1";
  FILE* pipe = popen(command.c_str(), "r");
  CommandResult result;
  if (!pipe) return result;
  char buffer[4096];
  while (fgets(buffer, sizeof(buffer), pipe)) result.output += buffer;
  const int status = pclose(pipe);
  result.exit_code = WEXITSTATUS(status);
  return result;
}

CommandResult RunCli(const std::string& args) { return RunCliEnv("", args); }

// ctest runs these cases in parallel processes; every path must be unique
// per test or TearDown in one process deletes a file another is reading.
std::string TempPath(const std::string& name) {
  const ::testing::TestInfo* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  return testing::TempDir() + "/" + (info ? info->name() : "unknown") + "_" +
         name;
}

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_path_ = TempPath("cli_graph.txt");
    const CommandResult gen = RunCli(
        "generate --name com-amazon-sim --scale 0.02 --output " +
        graph_path_);
    ASSERT_EQ(gen.exit_code, 0) << gen.output;
  }
  void TearDown() override { std::remove(graph_path_.c_str()); }

  std::string graph_path_;
};

TEST_F(CliTest, NoArgsPrintsUsage) {
  const CommandResult r = RunCli("");
  EXPECT_NE(r.exit_code, 0);
  EXPECT_NE(r.output.find("usage:"), std::string::npos);
}

TEST_F(CliTest, UnknownCommandFails) {
  const CommandResult r = RunCli("frobnicate");
  EXPECT_NE(r.exit_code, 0);
}

TEST_F(CliTest, CorpusListsEntries) {
  const CommandResult r = RunCli("corpus");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("soc-orkut-sim"), std::string::npos);
  EXPECT_NE(r.output.find("infra-road-sim"), std::string::npos);
}

TEST_F(CliTest, GenerateRejectsUnknownName) {
  const CommandResult r = RunCli("generate --name nope --output /dev/null");
  EXPECT_NE(r.exit_code, 0);
  EXPECT_NE(r.output.find("NOT_FOUND"), std::string::npos);
}

TEST_F(CliTest, ExactCountsRun) {
  const CommandResult r = RunCli("exact --input " + graph_path_);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("triangles"), std::string::npos);
  EXPECT_NE(r.output.find("clustering"), std::string::npos);
  // Higher-order motif oracles are opt-in (expensive on big graphs).
  EXPECT_EQ(r.output.find("4cliques"), std::string::npos);
  const CommandResult motifs =
      RunCli("exact --input " + graph_path_ + " --higher-motifs");
  EXPECT_EQ(motifs.exit_code, 0) << motifs.output;
  EXPECT_NE(motifs.output.find("4cliques"), std::string::npos);
  EXPECT_NE(motifs.output.find("3paths"), std::string::npos);
  EXPECT_NE(motifs.output.find("4cycles"), std::string::npos);
  EXPECT_NE(motifs.output.find("5cliques"), std::string::npos);
  EXPECT_NE(motifs.output.find("tailed_triangles"), std::string::npos);
}

TEST_F(CliTest, ExactMissingFileFails) {
  const CommandResult r = RunCli("exact --input /nonexistent.txt");
  EXPECT_NE(r.exit_code, 0);
}

TEST_F(CliTest, EstimateBothFrameworks) {
  const CommandResult r = RunCli("estimate --input " + graph_path_ +
                                 " --capacity 2000 --seed 5");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("in-stream estimates"), std::string::npos);
  EXPECT_NE(r.output.find("post-stream estimates"), std::string::npos);
}

TEST_F(CliTest, EstimateWithEachWeight) {
  for (const char* weight :
       {"uniform", "adjacency", "triangle", "triangle-wedge"}) {
    const CommandResult r =
        RunCli("estimate --input " + graph_path_ +
               " --capacity 1000 --estimator in-stream --weight " + weight);
    EXPECT_EQ(r.exit_code, 0) << weight << ": " << r.output;
  }
  const CommandResult bad = RunCli("estimate --input " + graph_path_ +
                                   " --weight bogus");
  EXPECT_NE(bad.exit_code, 0);
}

TEST_F(CliTest, CheckpointResumeRoundTrip) {
  const std::string ckpt = TempPath("cli_ckpt.gps");
  const CommandResult est =
      RunCli("estimate --input " + graph_path_ +
             " --capacity 1500 --checkpoint " + ckpt);
  ASSERT_EQ(est.exit_code, 0) << est.output;
  EXPECT_NE(est.output.find("checkpoint written"), std::string::npos);

  const CommandResult resume =
      RunCli("resume --checkpoint " + ckpt + " --input " + graph_path_);
  EXPECT_EQ(resume.exit_code, 0) << resume.output;
  EXPECT_NE(resume.output.find("resumed at"), std::string::npos);
  EXPECT_NE(resume.output.find("in-stream estimates (resumed)"),
            std::string::npos);
  std::remove(ckpt.c_str());
}

TEST_F(CliTest, ResumeRejectsCorruptCheckpoint) {
  const std::string ckpt = TempPath("cli_bad_ckpt.gps");
  std::ofstream(ckpt) << "NOT-A-CHECKPOINT 1\n";
  const CommandResult r =
      RunCli("resume --checkpoint " + ckpt + " --input " + graph_path_);
  EXPECT_NE(r.exit_code, 0);
  std::remove(ckpt.c_str());
}

TEST_F(CliTest, FlagMissingValueFails) {
  const CommandResult r = RunCli("estimate --input");
  EXPECT_NE(r.exit_code, 0);
  EXPECT_NE(r.output.find("needs a value"), std::string::npos);
}

TEST_F(CliTest, UnknownCommandNamesTheCommand) {
  const CommandResult r = RunCli("frobnicate");
  EXPECT_NE(r.exit_code, 0);
  EXPECT_NE(r.output.find("unknown subcommand 'frobnicate'"),
            std::string::npos);
  EXPECT_NE(r.output.find("usage:"), std::string::npos);
}

TEST_F(CliTest, UnknownFlagFails) {
  const CommandResult r =
      RunCli("estimate --input " + graph_path_ + " --bogus 1");
  EXPECT_NE(r.exit_code, 0);
  EXPECT_NE(r.output.find("unknown flag '--bogus'"), std::string::npos);
}

TEST_F(CliTest, FlagValidationIsPerSubcommand) {
  // --shards belongs to estimate, not exact.
  const CommandResult r =
      RunCli("exact --input " + graph_path_ + " --shards 2");
  EXPECT_NE(r.exit_code, 0);
  EXPECT_NE(r.output.find("unknown flag '--shards'"), std::string::npos);
}

TEST_F(CliTest, EstimateSharded) {
  const CommandResult r =
      RunCli("estimate --input " + graph_path_ +
             " --capacity 2000 --shards 4 --batch 256");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("4 shards"), std::string::npos);
  EXPECT_NE(r.output.find("merged in-stream estimates"), std::string::npos);
  EXPECT_NE(r.output.find("merged post-stream estimates"),
            std::string::npos);
}

TEST_F(CliTest, EstimateStealOnMatchesStealOffByteForByte) {
  // The scheduler's user-facing contract: --steal on output equals
  // --steal off output exactly (same deterministic batch-substream
  // semantics; only thief activation differs).
  const std::string args = "estimate --input " + graph_path_ +
                           " --capacity 2000 --shards 4 --batch 128 "
                           "--seed 9 --motifs tri,4cycle --steal ";
  const CommandResult off = RunCli(args + "off");
  ASSERT_EQ(off.exit_code, 0) << off.output;
  const CommandResult on = RunCli(args + "on");
  ASSERT_EQ(on.exit_code, 0) << on.output;
  EXPECT_EQ(off.output, on.output);
  EXPECT_NE(on.output.find("merged in-stream estimates"),
            std::string::npos);
}

TEST_F(CliTest, EstimateStealFlagValidation) {
  const CommandResult bad =
      RunCli("estimate --input " + graph_path_ + " --steal sideways");
  EXPECT_NE(bad.exit_code, 0);
  EXPECT_NE(bad.output.find("expects on or off"), std::string::npos);
  const CommandResult post =
      RunCli("estimate --input " + graph_path_ +
             " --estimator post --steal on");
  EXPECT_NE(post.exit_code, 0);
  EXPECT_NE(post.output.find("in-stream"), std::string::npos);
}

TEST_F(CliTest, EstimatePostStreamHonorsThreads) {
  const CommandResult r =
      RunCli("estimate --input " + graph_path_ +
             " --capacity 2000 --estimator post --threads 4");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("post-stream estimates"), std::string::npos);
}

TEST_F(CliTest, ShardedCheckpointWritesManifest) {
  const std::string dir = TempPath("sharded_ckpt_dir");
  const CommandResult r =
      RunCli("estimate --input " + graph_path_ +
             " --capacity 1000 --shards 2 --checkpoint " + dir);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("sharded checkpoint written"), std::string::npos);
  EXPECT_TRUE(std::ifstream(dir + "/manifest.gpsm").good());
  EXPECT_TRUE(std::ifstream(dir + "/shard-0001.gps").good());
  std::filesystem::remove_all(dir);
}

TEST_F(CliTest, ShardedCheckpointRejectsPostEstimator) {
  // Post-stream shards keep no in-stream state to persist.
  const CommandResult r =
      RunCli("estimate --input " + graph_path_ +
             " --shards 2 --estimator post --checkpoint " +
             TempPath("nope"));
  EXPECT_NE(r.exit_code, 0);
  EXPECT_NE(r.output.find("in-stream"), std::string::npos);
}

TEST_F(CliTest, EstimateRejectsZeroShards) {
  const CommandResult r =
      RunCli("estimate --input " + graph_path_ + " --shards 0");
  EXPECT_NE(r.exit_code, 0);
}

TEST_F(CliTest, EstimateRejectsOverflowingShards) {
  // 2^32 would truncate to 0 shards; must be rejected, not crash.
  const CommandResult r =
      RunCli("estimate --input " + graph_path_ + " --shards 4294967296");
  EXPECT_NE(r.exit_code, 0);
  EXPECT_NE(r.output.find("--shards must be in"), std::string::npos);
}

TEST_F(CliTest, ShardedRejectsThreads) {
  const CommandResult r = RunCli("estimate --input " + graph_path_ +
                                 " --shards 2 --threads 4");
  EXPECT_NE(r.exit_code, 0);
  EXPECT_NE(r.output.find("single-shard"), std::string::npos);
}

TEST_F(CliTest, EstimateShardedPostOnly) {
  const CommandResult r =
      RunCli("estimate --input " + graph_path_ +
             " --capacity 2000 --shards 4 --estimator post");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("merged post-stream estimates"),
            std::string::npos);
  EXPECT_EQ(r.output.find("merged in-stream"), std::string::npos);
}

TEST_F(CliTest, EstimateRejectsUnknownEstimator) {
  const CommandResult r = RunCli("estimate --input " + graph_path_ +
                                 " --estimator sideways");
  EXPECT_NE(r.exit_code, 0);
  EXPECT_NE(r.output.find("unknown estimator"), std::string::npos);
}

TEST_F(CliTest, RejectsMisparsedNumericFlags) {
  // Misparsed operator input must fail loudly, naming the flag — not
  // silently degrade ("--capacity abc" used to become 0, "--shards 2x"
  // used to become 2).
  const struct {
    const char* args;
    const char* flag;
  } kCases[] = {
      {"--capacity abc", "--capacity"},
      {"--capacity -5", "--capacity"},
      {"--shards 2x", "--shards"},
      {"--seed 1e9", "--seed"},
      {"--batch 99999999999999999999999", "--batch"},
      {"--threads ''", "--threads"},
  };
  for (const auto& c : kCases) {
    const CommandResult r =
        RunCli("estimate --input " + graph_path_ + " " + c.args);
    EXPECT_NE(r.exit_code, 0) << c.args;
    EXPECT_NE(r.output.find(c.flag), std::string::npos) << r.output;
  }
}

TEST_F(CliTest, GenerateRejectsMisparsedScale) {
  const CommandResult r = RunCli(
      "generate --name com-amazon-sim --scale 1.2.3 --output /dev/null");
  EXPECT_NE(r.exit_code, 0);
  EXPECT_NE(r.output.find("--scale"), std::string::npos);
}

// Extracts the estimates block starting at `label` (through the
// clustering line), so live and checkpoint-merge outputs can be compared
// byte for byte.
std::string EstimatesBlock(const std::string& output,
                           const std::string& label) {
  const size_t start = output.find(label);
  if (start == std::string::npos) return "<label '" + label + "' missing>";
  size_t end = output.find("clustering", start);
  if (end == std::string::npos) return "<clustering line missing>";
  end = output.find('\n', end);
  return output.substr(start, end - start);
}

TEST_F(CliTest, CheckpointShardsMergeMatchesLiveByteForByte) {
  const std::string dir = TempPath("ckpt_shards_dir");
  const std::string params =
      " --capacity 1500 --seed 11 --shards 4 --batch 256";
  const CommandResult live =
      RunCli("estimate --input " + graph_path_ + params +
             " --estimator in-stream");
  ASSERT_EQ(live.exit_code, 0) << live.output;

  const CommandResult ckpt = RunCli("checkpoint-shards --input " +
                                    graph_path_ + params + " --out " + dir);
  ASSERT_EQ(ckpt.exit_code, 0) << ckpt.output;
  EXPECT_NE(ckpt.output.find("manifest written"), std::string::npos);

  const CommandResult merged =
      RunCli("merge-checkpoints --manifest " + dir + "/manifest.gpsm");
  ASSERT_EQ(merged.exit_code, 0) << merged.output;

  const std::string label = "merged in-stream estimates";
  const std::string live_block = EstimatesBlock(live.output, label);
  EXPECT_EQ(live_block, EstimatesBlock(ckpt.output, label));
  EXPECT_EQ(live_block, EstimatesBlock(merged.output, label));
  std::filesystem::remove_all(dir);
}

TEST_F(CliTest, MergeCheckpointsRejectsMismatchedSeeds) {
  const std::string dir_a = TempPath("merge_a");
  const std::string dir_b = TempPath("merge_b");
  const std::string base =
      "checkpoint-shards --input " + graph_path_ +
      " --capacity 1000 --shards 2 --out ";
  ASSERT_EQ(RunCli(base + dir_a + " --seed 1").exit_code, 0);
  ASSERT_EQ(RunCli(base + dir_b + " --seed 2").exit_code, 0);
  const CommandResult r =
      RunCli("merge-checkpoints --manifest " + dir_a +
             "/manifest.gpsm --manifest " + dir_b + "/manifest.gpsm");
  EXPECT_NE(r.exit_code, 0);
  EXPECT_NE(r.output.find("FAILED_PRECONDITION"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("base seed"), std::string::npos) << r.output;
  std::filesystem::remove_all(dir_a);
  std::filesystem::remove_all(dir_b);
}

TEST_F(CliTest, MergeCheckpointsRequiresManifestFlag) {
  const CommandResult r = RunCli("merge-checkpoints");
  EXPECT_NE(r.exit_code, 0);
  EXPECT_NE(r.output.find("--manifest"), std::string::npos);
}

TEST_F(CliTest, RejectsZeroCountFlags) {
  // Zero is as much operator error as a misparse for positive-count
  // flags; the error must name the flag (PR 2 strict-parsing rules).
  const struct {
    const char* command_args;
    const char* flag;
  } kCases[] = {
      {"estimate --input {} --batch 0", "--batch"},
      {"estimate --input {} --threads 0", "--threads"},
      {"monitor --input {} --every 0", "--every"},
      {"monitor --input {} --every 10 --checkpoint-every 0",
       "--checkpoint-every"},
      {"resume-shards --manifest x --input {} --batch 0", "--batch"},
  };
  for (const auto& c : kCases) {
    std::string args = c.command_args;
    args.replace(args.find("{}"), 2, graph_path_);
    const CommandResult r = RunCli(args);
    EXPECT_NE(r.exit_code, 0) << args;
    EXPECT_NE(r.output.find(std::string("flag '") + c.flag +
                            "' must be >= 1"),
              std::string::npos)
        << args << ": " << r.output;
  }
  // And negatives still fail the unsigned parse, naming the flag.
  const CommandResult negative =
      RunCli("monitor --input " + graph_path_ + " --every -3");
  EXPECT_NE(negative.exit_code, 0);
  EXPECT_NE(negative.output.find("--every"), std::string::npos)
      << negative.output;
}

TEST_F(CliTest, MonitorNeedsEvery) {
  const CommandResult r = RunCli("monitor --input " + graph_path_);
  EXPECT_NE(r.exit_code, 0);
  EXPECT_NE(r.output.find("--every"), std::string::npos);
}

TEST_F(CliTest, MonitorRejectsBadOutputAndCheckpointCombos) {
  const CommandResult bad_output = RunCli(
      "monitor --input " + graph_path_ + " --every 100 --output yaml");
  EXPECT_NE(bad_output.exit_code, 0);
  EXPECT_NE(bad_output.output.find("output format"), std::string::npos);

  const CommandResult no_dir = RunCli("monitor --input " + graph_path_ +
                                      " --every 100 --checkpoint-every 50");
  EXPECT_NE(no_dir.exit_code, 0);
  EXPECT_NE(no_dir.output.find("--checkpoint"), std::string::npos);

  const CommandResult no_every =
      RunCli("monitor --input " + graph_path_ +
             " --every 100 --checkpoint " + TempPath("nope"));
  EXPECT_NE(no_every.exit_code, 0);
  EXPECT_NE(no_every.output.find("--checkpoint-every"), std::string::npos);
}

// Splits `output` into lines.
std::vector<std::string> Lines(const std::string& output) {
  std::vector<std::string> lines;
  std::istringstream in(output);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST_F(CliTest, MonitorEmitsCsvTimeSeriesEndingAtStreamEnd) {
  const std::string params = " --capacity 1500 --seed 11 --shards 2";
  const CommandResult r = RunCli("monitor --input " + graph_path_ + params +
                                 " --every 1000");
  ASSERT_EQ(r.exit_code, 0) << r.output;
  const std::vector<std::string> lines = Lines(r.output);
  ASSERT_GE(lines.size(), 3u);
  EXPECT_EQ(lines[0].rfind("edges,triangles,", 0), 0u) << lines[0];

  // Rows at 1000, 2000, ... plus a final partial row; edge counts are
  // the first CSV column and strictly increase.
  unsigned long long last_edges = 0;
  for (size_t i = 1; i < lines.size(); ++i) {
    unsigned long long edges = 0;
    ASSERT_EQ(std::sscanf(lines[i].c_str(), "%llu,", &edges), 1)
        << lines[i];
    EXPECT_GT(edges, last_edges);
    if (i + 1 < lines.size()) {
      EXPECT_EQ(edges, i * 1000ull);
    }
    last_edges = edges;
  }

  // The final row lands exactly at the end of the stream: one more
  // monitor run with a sampling interval larger than the stream yields
  // ONLY that final row, byte-identical (same input, seed, layout).
  const CommandResult single = RunCli("monitor --input " + graph_path_ +
                                      params + " --every 99999999");
  ASSERT_EQ(single.exit_code, 0) << single.output;
  const std::vector<std::string> single_lines = Lines(single.output);
  ASSERT_EQ(single_lines.size(), 2u) << single.output;
  EXPECT_EQ(lines.back(), single_lines.back());
}

TEST_F(CliTest, MonitorFinalRowMatchesEstimateExactly) {
  const std::string params = " --capacity 1500 --seed 11 --shards 2";
  const CommandResult mon = RunCli("monitor --input " + graph_path_ +
                                   params + " --every 2000");
  ASSERT_EQ(mon.exit_code, 0) << mon.output;
  const std::vector<std::string> lines = Lines(mon.output);
  ASSERT_GE(lines.size(), 2u);
  double tri = 0.0, wed = 0.0;
  unsigned long long edges = 0;
  ASSERT_EQ(std::sscanf(lines.back().c_str(),
                        "%llu,%lf,%*f,%*f,%*f,%lf", &edges, &tri, &wed),
            3)
      << lines.back();

  const CommandResult est = RunCli("estimate --input " + graph_path_ +
                                   params + " --estimator in-stream");
  ASSERT_EQ(est.exit_code, 0) << est.output;
  // The estimate table renders counts with the same "%.0f" the expected
  // string uses here (string comparison, so the rounding mode can never
  // disagree). Cell padding depends on the other rows, so parse the
  // row's second cell instead of matching a padded line verbatim.
  const auto table_cell = [&est](const std::string& row_label) {
    const size_t row = est.output.find(" " + row_label);
    EXPECT_NE(row, std::string::npos) << est.output;
    if (row == std::string::npos) return std::string();
    const size_t bar = est.output.find('|', row);
    std::istringstream cell(est.output.substr(bar + 1));
    std::string value;
    cell >> value;
    return value;
  };
  char tri_cell[64], wed_cell[64];
  std::snprintf(tri_cell, sizeof(tri_cell), "%.0f", tri);
  std::snprintf(wed_cell, sizeof(wed_cell), "%.0f", wed);
  EXPECT_EQ(table_cell("triangles"), tri_cell)
      << "monitor's final triangles " << tri
      << " not found in estimate output:\n"
      << est.output;
  EXPECT_EQ(table_cell("wedges"), wed_cell) << est.output;
}

TEST_F(CliTest, MonitorEmptyStreamStillEmitsFinalRow) {
  // The documented contract guarantees at least one data row; a stream
  // with zero edges yields a single zero-estimate row at edges=0. (A
  // 0-byte file is refused outright by the input preflight, so the
  // canonical empty stream is a comment-only file.)
  const std::string empty_input = TempPath("empty.el");
  std::ofstream(empty_input) << "# no edges\n";
  const CommandResult r =
      RunCli("monitor --input " + empty_input + " --every 10 --no-permute");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  const std::vector<std::string> lines = Lines(r.output);
  ASSERT_EQ(lines.size(), 2u) << r.output;
  EXPECT_EQ(lines[1].rfind("0,0,", 0), 0u) << lines[1];
  std::remove(empty_input.c_str());
}

TEST_F(CliTest, MonitorTableOutput) {
  const CommandResult r = RunCli("monitor --input " + graph_path_ +
                                 " --every 5000 --output table");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("tri 95% CI"), std::string::npos);
}

TEST_F(CliTest, MonitorCheckpointEveryThenResumeShards) {
  const std::string dir = TempPath("monitor_ckpt");
  const std::string params = " --capacity 1200 --seed 13 --shards 2";
  const CommandResult mon =
      RunCli("monitor --input " + graph_path_ + params +
             " --every 2500 --checkpoint-every 2500 --checkpoint " + dir);
  ASSERT_EQ(mon.exit_code, 0) << mon.output;
  ASSERT_TRUE(std::ifstream(dir + "/manifest.gpsm").good());

  // The directory holds the END-of-stream state, so a resume continues
  // from the full input (feeding zero further edges keeps the
  // estimates). A 0-byte file would be refused by the preflight; a
  // comment-only file is the well-formed zero-edge stream.
  const std::string empty_input = TempPath("empty.el");
  std::ofstream(empty_input) << "# no further edges\n";
  const CommandResult resumed =
      RunCli("resume-shards --manifest " + dir + "/manifest.gpsm --input " +
             empty_input + " --no-permute");
  EXPECT_EQ(resumed.exit_code, 0) << resumed.output;
  EXPECT_NE(resumed.output.find("resumed 2 shards"), std::string::npos);
  EXPECT_NE(resumed.output.find("merged in-stream estimates"),
            std::string::npos);
  std::remove(empty_input.c_str());
  std::filesystem::remove_all(dir);
}

TEST_F(CliTest, ResumeShardsContinuationMatchesUninterruptedByteForByte) {
  // Canonicalize and sort the generated edge list so --no-permute streams
  // it verbatim, then split it: streaming part A, checkpointing, and
  // resuming over part B must print the same estimates block as an
  // uninterrupted run over the whole file.
  std::vector<std::pair<long, long>> edges;
  {
    std::ifstream in(graph_path_);
    long u = 0, v = 0;
    while (in >> u >> v) {
      if (u == v) continue;
      edges.emplace_back(std::min(u, v), std::max(u, v));
    }
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  ASSERT_GT(edges.size(), 100u);
  const std::string full = TempPath("full.el");
  const std::string part_a = TempPath("a.el");
  const std::string part_b = TempPath("b.el");
  {
    std::ofstream fo(full), ao(part_a), bo(part_b);
    for (size_t i = 0; i < edges.size(); ++i) {
      fo << edges[i].first << ' ' << edges[i].second << '\n';
      (i < edges.size() / 2 ? ao : bo)
          << edges[i].first << ' ' << edges[i].second << '\n';
    }
  }

  const std::string params = " --capacity 900 --seed 17 --shards 4";
  const CommandResult uninterrupted =
      RunCli("estimate --input " + full + params +
             " --estimator in-stream --no-permute");
  ASSERT_EQ(uninterrupted.exit_code, 0) << uninterrupted.output;

  const std::string dir = TempPath("resume_dir");
  const CommandResult ckpt =
      RunCli("checkpoint-shards --input " + part_a + params +
             " --no-permute --out " + dir);
  ASSERT_EQ(ckpt.exit_code, 0) << ckpt.output;
  const CommandResult resumed =
      RunCli("resume-shards --manifest " + dir + "/manifest.gpsm --input " +
             part_b + " --no-permute");
  ASSERT_EQ(resumed.exit_code, 0) << resumed.output;

  const std::string label = "merged in-stream estimates";
  EXPECT_EQ(EstimatesBlock(uninterrupted.output, label),
            EstimatesBlock(resumed.output, label));

  std::remove(full.c_str());
  std::remove(part_a.c_str());
  std::remove(part_b.c_str());
  std::filesystem::remove_all(dir);
}

TEST_F(CliTest, ListMotifsShowsRegistry) {
  const CommandResult r = RunCli("list-motifs");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  for (const char* name : {"tri", "wedge", "4clique", "3path", "4cycle",
                           "5clique", "tailed_triangle"}) {
    EXPECT_NE(r.output.find(name), std::string::npos) << name;
  }
}

TEST_F(CliTest, EstimateWithMotifsPrintsMotifRows) {
  const CommandResult r =
      RunCli("estimate --input " + graph_path_ +
             " --capacity 2000 --seed 5 --shards 2 --motifs tri,4clique"
             " --estimator in-stream --degree 3");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("motif:tri"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("motif:4clique"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("edges"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("deg(3)"), std::string::npos) << r.output;
}

TEST_F(CliTest, EstimateMotifsRouteThroughEngineAtOneShard) {
  // --motifs without --shards runs the K=1 engine (byte-identical sample
  // path; manifest checkpoints carry the accumulators).
  const std::string dir = TempPath("motif_ckpt");
  const CommandResult r =
      RunCli("estimate --input " + graph_path_ +
             " --capacity 1500 --motifs 3path --estimator in-stream"
             " --checkpoint " + dir);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("motif:3path"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("sharded checkpoint written"), std::string::npos)
      << r.output;
  // The checkpoint merges back with the motif column intact.
  const CommandResult merged =
      RunCli("merge-checkpoints --manifest " + dir + "/manifest.gpsm");
  EXPECT_EQ(merged.exit_code, 0) << merged.output;
  EXPECT_NE(merged.output.find("motif:3path"), std::string::npos)
      << merged.output;
  std::filesystem::remove_all(dir);
}

TEST_F(CliTest, EstimateRejectsBadMotifFlags) {
  const CommandResult unknown = RunCli(
      "estimate --input " + graph_path_ + " --motifs tri,pentagon");
  EXPECT_NE(unknown.exit_code, 0);
  EXPECT_NE(unknown.output.find("pentagon"), std::string::npos)
      << unknown.output;

  const CommandResult post = RunCli("estimate --input " + graph_path_ +
                                    " --motifs tri --estimator post");
  EXPECT_NE(post.exit_code, 0);
  EXPECT_NE(post.output.find("in-stream"), std::string::npos)
      << post.output;
}

TEST_F(CliTest, MonitorWithMotifsExtendsCsvSchema) {
  const CommandResult r =
      RunCli("monitor --input " + graph_path_ +
             " --capacity 1500 --seed 11 --shards 2 --every 3000"
             " --motifs 4clique,3path");
  ASSERT_EQ(r.exit_code, 0) << r.output;
  const std::vector<std::string> lines = Lines(r.output);
  ASSERT_GE(lines.size(), 2u);
  EXPECT_NE(lines[0].find(",4clique,4clique_lo,4clique_hi,"
                          "4clique_ci_width,3path,"),
            std::string::npos)
      << lines[0];
  // Every data row carries the motif columns (base 12 + 2 * 4).
  for (size_t i = 1; i < lines.size(); ++i) {
    EXPECT_EQ(std::count(lines[i].begin(), lines[i].end(), ','), 19)
        << lines[i];
  }
}

TEST_F(CliTest, ResumeShardsCrossChecksMotifSet) {
  const std::string dir = TempPath("resume_motifs");
  ASSERT_EQ(RunCli("checkpoint-shards --input " + graph_path_ +
                   " --capacity 1000 --shards 2 --motifs tri,4clique"
                   " --out " + dir)
                .exit_code,
            0);
  // Matching set passes and prints motif rows.
  const CommandResult ok =
      RunCli("resume-shards --manifest " + dir + "/manifest.gpsm"
             " --input " + graph_path_ + " --motifs tri,4clique");
  EXPECT_EQ(ok.exit_code, 0) << ok.output;
  EXPECT_NE(ok.output.find("motif:4clique"), std::string::npos)
      << ok.output;
  // Mismatched set is refused.
  const CommandResult mismatch =
      RunCli("resume-shards --manifest " + dir + "/manifest.gpsm"
             " --input " + graph_path_ + " --motifs tri");
  EXPECT_NE(mismatch.exit_code, 0);
  EXPECT_NE(mismatch.output.find("motif"), std::string::npos)
      << mismatch.output;
  std::filesystem::remove_all(dir);
}

TEST_F(CliTest, ResumeShardsRequiresManifest) {
  const CommandResult r = RunCli("resume-shards --input " + graph_path_);
  EXPECT_NE(r.exit_code, 0);
  EXPECT_NE(r.output.find("--manifest"), std::string::npos);
}

TEST_F(CliTest, ResumeShardsRejectsMissingManifest) {
  const CommandResult r = RunCli("resume-shards --manifest /nonexistent.gpsm"
                                 " --input " + graph_path_);
  EXPECT_NE(r.exit_code, 0);
  EXPECT_NE(r.output.find("NOT_FOUND"), std::string::npos) << r.output;
}

TEST_F(CliTest, ResumeSavePersistsContinuedState) {
  const std::string first = TempPath("chain1.gps");
  const std::string second = TempPath("chain2.gps");
  ASSERT_EQ(RunCli("estimate --input " + graph_path_ +
                   " --capacity 1500 --checkpoint " + first)
                .exit_code,
            0);
  const CommandResult saved =
      RunCli("resume --checkpoint " + first + " --input " + graph_path_ +
             " --save " + second);
  EXPECT_EQ(saved.exit_code, 0) << saved.output;
  EXPECT_NE(saved.output.find("checkpoint written"), std::string::npos);
  // The chain continues from the SAVED state, not the original.
  const CommandResult resumed =
      RunCli("resume --checkpoint " + second + " --input " + graph_path_);
  EXPECT_EQ(resumed.exit_code, 0) << resumed.output;
  EXPECT_NE(resumed.output.find("resumed at"), std::string::npos);
  std::remove(first.c_str());
  std::remove(second.c_str());
}

TEST_F(CliTest, VersionReportsFormats) {
  const CommandResult r = RunCli("version");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("manifest format"), std::string::npos);
  EXPECT_NE(r.output.find("v4"), std::string::npos);
  EXPECT_NE(r.output.find("manifest min read"), std::string::npos);
  EXPECT_NE(r.output.find("estimator format"), std::string::npos);
  EXPECT_NE(r.output.find("stream format"), std::string::npos);
  EXPECT_NE(r.output.find("metrics"), std::string::npos);
  EXPECT_NE(r.output.find("intersect simd"), std::string::npos);
}

TEST_F(CliTest, ForcedIntersectKernelsAreByteIdenticalOnGoldenStream) {
  // The intersection kernels' user-facing contract (graph/intersect.h):
  // GPS_INTERSECT_KERNEL=merge|gallop|simd runs of the same estimate and
  // the same monitor CSV produce byte-identical output — kernel choice
  // (and therefore CPU generation or -DGPS_SIMD setting) can never move
  // an estimate. 'simd' rides along even on non-simd builds, where it
  // must degrade to merge rather than diverge or crash.
  const std::string estimate_args = "estimate --input " + graph_path_ +
                                    " --capacity 2000 --shards 4 "
                                    "--batch 128 --seed 9";
  const std::string monitor_args = "monitor --input " + graph_path_ +
                                   " --capacity 1500 --seed 11 --shards 2 "
                                   "--every 1000";
  const CommandResult est_base = RunCli(estimate_args);
  ASSERT_EQ(est_base.exit_code, 0) << est_base.output;
  const CommandResult mon_base = RunCli(monitor_args);
  ASSERT_EQ(mon_base.exit_code, 0) << mon_base.output;
  for (const std::string kernel : {"merge", "gallop", "simd"}) {
    const std::string env = "GPS_INTERSECT_KERNEL=" + kernel;
    const CommandResult est = RunCliEnv(env, estimate_args);
    ASSERT_EQ(est.exit_code, 0) << kernel << ": " << est.output;
    EXPECT_EQ(est.output, est_base.output) << kernel;
    const CommandResult mon = RunCliEnv(env, monitor_args);
    ASSERT_EQ(mon.exit_code, 0) << kernel << ": " << mon.output;
    EXPECT_EQ(mon.output, mon_base.output) << kernel;
  }
}

TEST_F(CliTest, UnknownIntersectKernelWarnsAndRunsAdaptive) {
  const CommandResult r =
      RunCliEnv("GPS_INTERSECT_KERNEL=quantum", "version");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("GPS_INTERSECT_KERNEL"), std::string::npos)
      << r.output;
}

TEST_F(CliTest, VersionRejectsFlags) {
  const CommandResult r = RunCli("version --bogus 1");
  EXPECT_NE(r.exit_code, 0);
}

TEST_F(CliTest, EstimateStatsPrintsMetrics) {
  const CommandResult r = RunCli("estimate --input " + graph_path_ +
                                 " --capacity 500 --shards 2 --stats");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("metrics:"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("\"engine.edges_ingested\""), std::string::npos);
  EXPECT_NE(r.output.find("\"reservoir.admissions\""), std::string::npos);
}

// --stats routes even a single-shard run through the engine and must not
// change the estimates the serial path would report (the engine's K=1
// byte-identity contract, observed through the CLI surface).
TEST_F(CliTest, EstimateStatsKeepsSerialEstimates) {
  const std::string base_args =
      "estimate --input " + graph_path_ + " --capacity 500 --seed 5";
  const CommandResult plain = RunCli(base_args);
  const CommandResult stats = RunCli(base_args + " --stats");
  ASSERT_EQ(plain.exit_code, 0) << plain.output;
  ASSERT_EQ(stats.exit_code, 0) << stats.output;
  // Compare the estimate tables line by line; the stats run prints the
  // same rows (under engine labels) before the metrics block.
  std::istringstream lines(plain.output);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.find("triangles") == std::string::npos &&
        line.find("wedges") == std::string::npos) {
      continue;
    }
    EXPECT_NE(stats.output.find(line.substr(line.find('|'))),
              std::string::npos)
        << "missing row: " << line;
  }
}

TEST_F(CliTest, EstimateStatsOutWritesFile) {
  const std::string stats_path = TempPath("stats.json");
  const CommandResult r =
      RunCli("estimate --input " + graph_path_ +
             " --capacity 500 --shards 2 --stats-out " + stats_path);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("metrics written to"), std::string::npos);
  std::ifstream in(stats_path);
  ASSERT_TRUE(in.good());
  std::stringstream text;
  text << in.rdbuf();
  EXPECT_NE(text.str().find("\"counters\""), std::string::npos);
  std::remove(stats_path.c_str());
}

TEST_F(CliTest, EstimateTraceWritesChromeTraceFile) {
  const std::string trace_path = TempPath("trace.json");
  const CommandResult r =
      RunCli("estimate --input " + graph_path_ +
             " --capacity 500 --shards 2 --steal on --trace " + trace_path);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("trace written to"), std::string::npos);
  std::ifstream in(trace_path);
  ASSERT_TRUE(in.good());
  std::stringstream text;
  text << in.rdbuf();
  EXPECT_NE(text.str().find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.str().find("\"shard-0\""), std::string::npos);
  EXPECT_NE(text.str().find("\"batch\""), std::string::npos);
  std::remove(trace_path.c_str());
}

TEST_F(CliTest, MonitorStatsAndTrace) {
  const std::string trace_path = TempPath("mon_trace.json");
  const CommandResult r = RunCli(
      "monitor --input " + graph_path_ +
      " --capacity 500 --shards 2 --every 2000 --stats --trace " +
      trace_path);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("metrics:"), std::string::npos);
  EXPECT_NE(r.output.find("trace written to"), std::string::npos);
  std::ifstream in(trace_path);
  ASSERT_TRUE(in.good());
  std::stringstream text;
  text << in.rdbuf();
  // The monitor's periodic estimate spans land on the producer track.
  EXPECT_NE(text.str().find("\"estimate\""), std::string::npos);
  std::remove(trace_path.c_str());
}

TEST_F(CliTest, StatsFlagIsPerSubcommand) {
  const CommandResult r = RunCli("exact --input " + graph_path_ + " --stats");
  EXPECT_NE(r.exit_code, 0);
  EXPECT_NE(r.output.find("stats"), std::string::npos);
}

TEST_F(CliTest, MemAndCapacityAreMutuallyExclusive) {
  const CommandResult r = RunCli("estimate --input " + graph_path_ +
                                 " --mem 1M --capacity 2000");
  EXPECT_NE(r.exit_code, 0);
  EXPECT_NE(r.output.find("mutually exclusive"), std::string::npos)
      << r.output;
}

TEST_F(CliTest, MemTooSmallIsNamedRefusal) {
  // 4K covers only the fixed overhead: zero reservoir slots. The refusal
  // names the minimum workable budget instead of crashing or clamping.
  const CommandResult r = RunCli("estimate --input " + graph_path_ +
                                 " --mem 4K");
  EXPECT_NE(r.exit_code, 0);
  EXPECT_NE(r.output.find("cannot hold even one"), std::string::npos)
      << r.output;
  const CommandResult junk = RunCli("estimate --input " + graph_path_ +
                                    " --mem 512MB");
  EXPECT_NE(junk.exit_code, 0);
  EXPECT_NE(junk.output.find("--mem"), std::string::npos) << junk.output;
}

TEST_F(CliTest, MemDerivedCapacityMatchesExplicitCapacity) {
  // LayoutForCapacity(2000) costs 4096 + 137 * 2000 = 278096 bytes, so a
  // --mem of exactly that must run the estimator with capacity 2000 and
  // print byte-identical estimates (capacity is the only thing --mem
  // changes).
  const std::string params = " --seed 5 --estimator in-stream";
  const CommandResult explicit_run =
      RunCli("estimate --input " + graph_path_ + params +
             " --capacity 2000");
  ASSERT_EQ(explicit_run.exit_code, 0) << explicit_run.output;
  const CommandResult mem_run = RunCli(
      "estimate --input " + graph_path_ + params + " --mem 278096");
  ASSERT_EQ(mem_run.exit_code, 0) << mem_run.output;

  const std::string label = "in-stream estimates";
  EXPECT_EQ(EstimatesBlock(explicit_run.output, label),
            EstimatesBlock(mem_run.output, label));
  // The startup allocation report names every budget term and the
  // derived capacity.
  for (const char* term :
       {"derived capacity", "2000", "slot columns", "adjacency arena"}) {
    EXPECT_NE(mem_run.output.find(term), std::string::npos)
        << term << "\n" << mem_run.output;
  }
}

// ---- convert + GPS-STREAM binary input -----------------------------------

/// Slurps a file's raw bytes for byte-identity assertions.
std::string FileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

TEST_F(CliTest, ConvertRoundTripIsByteIdentical) {
  const std::string binary = TempPath("convert.gps");
  const std::string back = TempPath("convert_back.txt");
  const CommandResult to_bin = RunCli("convert --input " + graph_path_ +
                                      " --output " + binary);
  ASSERT_EQ(to_bin.exit_code, 0) << to_bin.output;
  EXPECT_NE(to_bin.output.find("GPS-STREAM v1"), std::string::npos);
  EXPECT_NE(to_bin.output.find("digest-verified"), std::string::npos);
  const CommandResult to_text =
      RunCli("convert --input " + binary + " --output " + back);
  ASSERT_EQ(to_text.exit_code, 0) << to_text.output;
  // text -> binary -> text reproduces the original file byte for byte:
  // the stream format loses nothing.
  EXPECT_EQ(FileBytes(graph_path_), FileBytes(back));
  std::remove(binary.c_str());
  std::remove(back.c_str());
}

TEST_F(CliTest, EstimateFromBinaryMatchesTextByteForByte) {
  const std::string binary = TempPath("estimate.gps");
  ASSERT_EQ(RunCli("convert --input " + graph_path_ + " --output " +
                   binary).exit_code,
            0);
  const std::string params = " --capacity 2000 --seed 5";
  const CommandResult text = RunCli("estimate --input " + graph_path_ +
                                    params);
  const CommandResult bin = RunCli("estimate --input " + binary + params);
  ASSERT_EQ(text.exit_code, 0) << text.output;
  ASSERT_EQ(bin.exit_code, 0) << bin.output;
  // FULL stdout equality: same banner, same estimates, same formatting —
  // the input format is completely transparent to the estimate path.
  EXPECT_EQ(text.output, bin.output);
  std::remove(binary.c_str());
}

TEST_F(CliTest, InputFormatFlagForcesDecoder) {
  const std::string binary = TempPath("forced.gps");
  ASSERT_EQ(RunCli("convert --input " + graph_path_ + " --output " +
                   binary).exit_code,
            0);
  // Forcing the text parser onto a binary file must fail in the parser
  // (no magic sniffing), not silently decode.
  const CommandResult forced = RunCli("estimate --input " + binary +
                                      " --input-format text --capacity 100");
  EXPECT_NE(forced.exit_code, 0);
  EXPECT_NE(forced.output.find("malformed edge"), std::string::npos)
      << forced.output;
  // Forcing binary onto a text file fails with the magic refusal.
  const CommandResult forced_bin =
      RunCli("estimate --input " + graph_path_ +
             " --input-format binary --capacity 100");
  EXPECT_NE(forced_bin.exit_code, 0);
  EXPECT_NE(forced_bin.output.find("not a GPS-STREAM file"),
            std::string::npos)
      << forced_bin.output;
  const CommandResult bogus = RunCli("estimate --input " + graph_path_ +
                                     " --input-format csv --capacity 100");
  EXPECT_NE(bogus.exit_code, 0);
  EXPECT_NE(bogus.output.find("unknown --input-format 'csv'"),
            std::string::npos)
      << bogus.output;
  std::remove(binary.c_str());
}

TEST_F(CliTest, InputPreflightRefusesDirectoryAndEmptyFile) {
  const CommandResult dir = RunCli("estimate --input " + testing::TempDir() +
                                   " --capacity 100");
  EXPECT_NE(dir.exit_code, 0);
  EXPECT_NE(dir.output.find("is a directory"), std::string::npos)
      << dir.output;
  const std::string empty = TempPath("empty.txt");
  { std::ofstream touch(empty); }
  const CommandResult empty_run =
      RunCli("estimate --input " + empty + " --capacity 100");
  EXPECT_NE(empty_run.exit_code, 0);
  EXPECT_NE(empty_run.output.find("is empty"), std::string::npos)
      << empty_run.output;
  // convert shares the preflight.
  const CommandResult conv = RunCli("convert --input " + empty +
                                    " --output /dev/null");
  EXPECT_NE(conv.exit_code, 0);
  EXPECT_NE(conv.output.find("is empty"), std::string::npos) << conv.output;
  std::remove(empty.c_str());
}

TEST_F(CliTest, EstimateRefusesCorruptBinaryByName) {
  const std::string binary = TempPath("corrupt.gps");
  ASSERT_EQ(RunCli("convert --input " + graph_path_ + " --output " +
                   binary).exit_code,
            0);
  // Flip the final byte (the last block's digest).
  std::string bytes = FileBytes(binary);
  ASSERT_GT(bytes.size(), 48u);
  bytes[bytes.size() - 1] ^= 0x01;
  {
    std::ofstream out(binary, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  const CommandResult r = RunCli("estimate --input " + binary +
                                 " --capacity 100");
  EXPECT_NE(r.exit_code, 0);
  EXPECT_NE(r.output.find("digest mismatch"), std::string::npos)
      << r.output;
  std::remove(binary.c_str());
}

TEST_F(CliTest, ConvertValidatesFlags) {
  EXPECT_NE(RunCli("convert --input " + graph_path_).exit_code, 0);
  const CommandResult bad_to = RunCli("convert --input " + graph_path_ +
                                      " --output /dev/null --to xml");
  EXPECT_NE(bad_to.exit_code, 0);
  EXPECT_NE(bad_to.output.find("unknown --to 'xml'"), std::string::npos)
      << bad_to.output;
  const CommandResult bad_block =
      RunCli("convert --input " + graph_path_ +
             " --output /dev/null --block-edges 0");
  EXPECT_NE(bad_block.exit_code, 0);
}

}  // namespace
